file(REMOVE_RECURSE
  "CMakeFiles/mrmb_common.dir/logging.cc.o"
  "CMakeFiles/mrmb_common.dir/logging.cc.o.d"
  "CMakeFiles/mrmb_common.dir/stats.cc.o"
  "CMakeFiles/mrmb_common.dir/stats.cc.o.d"
  "CMakeFiles/mrmb_common.dir/status.cc.o"
  "CMakeFiles/mrmb_common.dir/status.cc.o.d"
  "CMakeFiles/mrmb_common.dir/strings.cc.o"
  "CMakeFiles/mrmb_common.dir/strings.cc.o.d"
  "CMakeFiles/mrmb_common.dir/units.cc.o"
  "CMakeFiles/mrmb_common.dir/units.cc.o.d"
  "libmrmb_common.a"
  "libmrmb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrmb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
