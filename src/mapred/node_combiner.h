// In-node combining across co-located map outputs (arXiv 1511.04861).
//
// Hadoop combines inside one map task (per spill, and again when spills
// merge); the in-node combiner goes further: once a block of co-located map
// tasks has committed, their sealed output segments are merged per
// partition through the loser tree, the combiner is re-run over each key
// group, and the shuffle serves ONE combined, re-sealed segment instead of
// the originals — repeated keys stop riding the wire multiplied by the
// number of maps on the node.
//
// This header is the pure build step: given the committed member outputs
// (RAM segments or durable spill extents, possibly codec-framed), produce
// the combined segment plus per-stage accounting. Scheduling — when a block
// is complete, generation tracking, invalidation when a member re-executes,
// publication to the shuffle transport — lives in LocalJobRunner, which
// treats each block as one shuffle stream.
//
// Determinism: members are merged in ascending map-task order and
// MergeFramedRuns breaks equal keys by input order, so the combined run
// reproduces exactly the equal-key order a reducer would have seen merging
// the member segments itself. With no combiner the output bytes the reduce
// side consumes are therefore byte-identical to the ungrouped plane; with a
// combiner, job-output identity additionally requires the combiner to be
// associative and commutative (CombinerKind::kSum is).

#ifndef MRMB_MAPRED_NODE_COMBINER_H_
#define MRMB_MAPRED_NODE_COMBINER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "io/comparator.h"
#include "io/kv_buffer.h"
#include "io/spill_store.h"
#include "mapred/api.h"
#include "mapred/job_conf.h"

namespace mrmb {

// One committed map output feeding a node-combine build. Exactly one of
// `segment` (RAM plane) or `stored` (disk spill extent) is normally set;
// when both are, the durable form wins, mirroring the shuffle's own serving
// preference.
struct NodeCombineMember {
  int map = 0;  // producing map task id (the blame target on damage)
  std::shared_ptr<const SpillSegment> segment;
  std::shared_ptr<const StoredSpill> stored;
};

// Accounting for one build: logical (decompressed) framed bytes and record
// counts in and out, plus CPU seconds spent inside the combiner itself
// (the calibration source for `combine_cpu_per_record`).
struct NodeCombineStats {
  int64_t input_records = 0;
  int64_t input_bytes = 0;
  int64_t output_records = 0;
  int64_t output_bytes = 0;
  double combine_seconds = 0;
};

struct NodeCombineOutput {
  // Sealed combined segment in wire form: codec-framed when the job
  // compresses map output, raw frames otherwise — exactly what a single
  // map's final output would look like, so the shuffle serves it verbatim.
  SpillSegment segment;
  NodeCombineStats stats;
};

// Merges `members` (ascending map order) per partition and re-combines each
// key group through `combiner` (pass null for merge-only grouping). Member
// reads honour conf.checksum_map_output and the job codec. On damaged
// member data returns DataLoss (or kIOError for persistent disk faults) and
// appends the responsible map ids to `corrupt_members`; the caller
// re-executes those maps and rebuilds, the same recovery contract as a
// reduce-side fetch. `stream_id` names the combined shuffle stream and is
// the task id the combiner's ReduceContext reports.
Result<NodeCombineOutput> BuildNodeCombinedSegment(
    const std::vector<NodeCombineMember>& members, const JobConf& conf,
    const RawComparator* comparator, Reducer* combiner, int stream_id,
    std::vector<int>* corrupt_members);

}  // namespace mrmb

#endif  // MRMB_MAPRED_NODE_COMBINER_H_
