// Motivation experiment: why the paper benchmarks MapReduce *stand-alone*.
//
// Sect. 1: "Current, commonly used benchmarks in Hadoop, such as Sort and
// TeraSort, usually require the involvement of HDFS. The performance of the
// HDFS component has significant impact on the overall performance of the
// MapReduce job, and this interferes in the evaluation of the performance
// benefits of new designs for MapReduce."
//
// This bench quantifies that interference with the HDFS-lite model: the
// same job measured stand-alone and as an HDFS-involved Sort (DFS input
// with 3x-replicated output). The DFS inflates job time and *changes the
// measured network improvement*, which is precisely what a MapReduce
// benchmark must not let happen.

#include "bench/bench_util.h"

namespace {

double RunShape(const mrmb::BenchmarkOptions& options, bool hdfs) {
  using namespace mrmb;
  JobConf conf = options.ToJobConf();
  conf.job_name = hdfs ? "sort" : "standalone";
  conf.read_input_from_dfs = hdfs;
  conf.write_output_to_dfs = hdfs;
  SimCluster cluster(options.ToClusterSpec());
  SimJobRunner runner(&cluster, conf, options.cost);
  auto result = runner.Run();
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  return result->job_seconds;
}

}  // namespace

int main() {
  using namespace mrmb;
  std::printf("=== Motivation: stand-alone MapReduce vs HDFS-involved Sort "
              "===\n");

  SweepTable standalone("Stand-alone micro-benchmark (MR-AVG)",
                        "ShuffleSize");
  SweepTable sort("HDFS-involved Sort (DFS input + 3x replicated output)",
                  "ShuffleSize");
  for (const NetworkProfile& network : {OneGigE(), TenGigE(), IpoibQdr()}) {
    for (int64_t size : {8 * kGB, 16 * kGB, 32 * kGB}) {
      BenchmarkOptions options;
      options.network = network;
      options.shuffle_bytes = size;
      options.num_maps = 16;
      options.num_reduces = 8;
      options.num_slaves = 4;
      const double bare = RunShape(options, false);
      const double hdfs = RunShape(options, true);
      std::printf("  %-22s %-6s standalone %8.2f s   sort+hdfs %8.2f s "
                  "(x%.2f)\n",
                  network.name.c_str(), bench::GbLabel(size).c_str(), bare,
                  hdfs, hdfs / bare);
      standalone.Add(network.name, bench::GbLabel(size), bare);
      sort.Add(network.name, bench::GbLabel(size), hdfs);
    }
  }
  standalone.PrintWithImprovement(OneGigE().name, &std::cout);
  sort.PrintWithImprovement(OneGigE().name, &std::cout);
  std::printf(
      "\nThe HDFS-involved job reports different network improvements than\n"
      "the stand-alone one — the DFS's own traffic (replication pipeline,\n"
      "remote reads) is entangled with the shuffle. This is the paper's\n"
      "case for benchmarking MapReduce without a distributed filesystem.\n");
  return 0;
}
