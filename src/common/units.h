// Byte-size and duration helpers used throughout the suite.
//
// Sim time is an integer count of nanoseconds (SimTime). Data sizes are
// int64 byte counts. Parsing accepts the spellings users type on benchmark
// command lines ("8GB", "1KB", "512", "100us", "2.5s").

#ifndef MRMB_COMMON_UNITS_H_
#define MRMB_COMMON_UNITS_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace mrmb {

// Simulated time in nanoseconds since simulation start.
using SimTime = int64_t;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1000 * kNanosecond;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;

inline constexpr int64_t kKB = 1024;
inline constexpr int64_t kMB = 1024 * kKB;
inline constexpr int64_t kGB = 1024 * kMB;

// Converts a SimTime to fractional seconds.
inline double ToSeconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

// Converts fractional seconds to SimTime, rounding to nearest nanosecond.
SimTime FromSeconds(double seconds);

// "1.50 GB", "512 B", "16.0 MB" — two decimals above bytes.
std::string FormatBytes(int64_t bytes);

// "123.456 ms", "1.2 s" — picks a readable unit.
std::string FormatDuration(SimTime t);

// Parses "512", "4KB", "16MB", "8GB" (case-insensitive, optional 'iB'
// suffix, optional fraction). Returns InvalidArgument on junk.
Result<int64_t> ParseBytes(std::string_view text);

// Parses "250ns", "100us", "5ms", "2.5s". Bare numbers are seconds.
Result<SimTime> ParseDuration(std::string_view text);

}  // namespace mrmb

#endif  // MRMB_COMMON_UNITS_H_
