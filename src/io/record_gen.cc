#include "io/record_gen.h"

#include "common/logging.h"
#include "io/byte_buffer.h"

namespace mrmb {

RecordGenerator::RecordGenerator(Options options)
    : options_(options) {
  MRMB_CHECK_GT(options_.num_unique_keys, 0);
  MRMB_CHECK(options_.type == DataType::kBytesWritable ||
             options_.type == DataType::kText ||
             options_.type == DataType::kIntWritable ||
             options_.type == DataType::kLongWritable)
      << "record generation supports BytesWritable, Text, IntWritable and "
         "LongWritable";
  if (options_.type == DataType::kBytesWritable ||
      options_.type == DataType::kText) {
    MRMB_CHECK_GE(options_.key_size, sizeof(uint64_t))
        << "key payload must fit the 8-byte key id";
  }
  serialized_key_size_ = SerializedSizeFor(options_.type, options_.key_size);
  serialized_value_size_ =
      SerializedSizeFor(options_.type, options_.value_size);
}

void RecordGenerator::FillPayload(uint64_t stream_seed, size_t len,
                                  std::string* out) const {
  const size_t start = out->size();
  out->resize(start + len);
  Rng rng(stream_seed);
  rng.Fill(out->data() + start, len);
  if (options_.type == DataType::kText) {
    // Text payloads must be valid UTF-8; map every byte to 'a'..'z'.
    for (size_t i = start; i < out->size(); ++i) {
      (*out)[i] = static_cast<char>(
          'a' + (static_cast<unsigned char>((*out)[i]) % 26));
    }
  }
}

void RecordGenerator::SerializedKey(int64_t key_id, std::string* out) const {
  out->clear();
  if (options_.type == DataType::kIntWritable) {
    BufferWriter writer(out);
    IntWritable(static_cast<int32_t>(key_id)).Serialize(&writer);
    return;
  }
  if (options_.type == DataType::kLongWritable) {
    BufferWriter writer(out);
    LongWritable(key_id).Serialize(&writer);
    return;
  }
  std::string payload;
  payload.reserve(options_.key_size);
  // Big-endian key id first: distinct ids sort and compare distinctly, and
  // identical ids yield identical bytes.
  for (int i = 0; i < 8; ++i) {
    payload.push_back(static_cast<char>(
        static_cast<uint64_t>(key_id) >> (56 - 8 * i)));
  }
  if (options_.type == DataType::kText) {
    for (char& c : payload) {
      c = static_cast<char>('a' + (static_cast<unsigned char>(c) % 26));
    }
  }
  FillPayload(options_.seed ^ (0x517cc1b727220a95ULL +
                               static_cast<uint64_t>(key_id)),
              options_.key_size - payload.size(), &payload);

  BufferWriter writer(out);
  if (options_.type == DataType::kBytesWritable) {
    BytesWritable(std::move(payload)).Serialize(&writer);
  } else {
    Text(std::move(payload)).Serialize(&writer);
  }
}

void RecordGenerator::SerializedValue(int64_t index, std::string* out) const {
  out->clear();
  if (options_.type == DataType::kIntWritable) {
    BufferWriter writer(out);
    IntWritable(static_cast<int32_t>(index & 0x7fffffff)).Serialize(&writer);
    return;
  }
  if (options_.type == DataType::kLongWritable) {
    BufferWriter writer(out);
    LongWritable(index).Serialize(&writer);
    return;
  }
  std::string payload;
  payload.reserve(options_.value_size);
  FillPayload(options_.seed ^ (0x2545f4914f6cdd1dULL +
                               static_cast<uint64_t>(index)),
              options_.value_size, &payload);
  BufferWriter writer(out);
  if (options_.type == DataType::kBytesWritable) {
    BytesWritable(std::move(payload)).Serialize(&writer);
  } else {
    Text(std::move(payload)).Serialize(&writer);
  }
}

size_t RecordGenerator::framed_record_size() const {
  return VarintLength(static_cast<int64_t>(serialized_key_size_)) +
         VarintLength(static_cast<int64_t>(serialized_value_size_)) +
         serialized_key_size_ + serialized_value_size_;
}

int64_t RecordGenerator::RecordsForShuffleBytes(int64_t target_bytes) const {
  const auto frame = static_cast<int64_t>(framed_record_size());
  return (target_bytes + frame - 1) / frame;
}

}  // namespace mrmb
