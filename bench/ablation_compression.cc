// Ablation: intermediate-data compression (mapred.compress.map.output).
//
// Extends the paper's data-type observation ("reducing the sheer number of
// bytes taken up by the intermediate data can provide a substantial
// performance gain", Sect. 3): DEFLATE on Text map output trades CPU for
// bytes. The crossover is network-dependent — on 1 GigE the byte savings
// dominate; on IPoIB QDR the wire is cheap and the codec CPU is exposed.
// BytesWritable (pseudo-random payload) is incompressible: compression only
// costs CPU there, on any network.

#include "bench/bench_util.h"

int main() {
  using namespace mrmb;
  std::printf("=== Ablation: map-output compression (16GB, Cluster A) ===\n");

  SweepTable table("Compression on/off by network and data type", "Config");
  for (DataType type : {DataType::kText, DataType::kBytesWritable}) {
    for (const NetworkProfile& network : {OneGigE(), IpoibQdr()}) {
      for (bool compress : {false, true}) {
        BenchmarkOptions options;
        options.pattern = DistributionPattern::kRandom;
        options.data_type = type;
        options.network = network;
        options.compress_map_output = compress;
        options.shuffle_bytes = 16 * kGB;
        options.num_maps = 16;
        options.num_reduces = 8;
        options.num_slaves = 4;
        const std::string config =
            std::string(DataTypeName(type)) + "/" +
            (compress ? "deflate" : "plain");
        const double seconds =
            bench::Measure(options, network.name, config);
        table.Add(network.name, config, seconds);
      }
    }
  }
  table.Print(&std::cout);

  std::printf("\n--- compression benefit (positive = helps) ---\n");
  for (DataType type : {DataType::kText, DataType::kBytesWritable}) {
    for (const NetworkProfile& network : {OneGigE(), IpoibQdr()}) {
      const std::string base =
          std::string(DataTypeName(type)) + "/plain";
      const std::string comp =
          std::string(DataTypeName(type)) + "/deflate";
      const double plain = table.Get(network.name, base);
      const double deflate = table.Get(network.name, comp);
      if (plain > 0 && deflate > 0) {
        std::printf("  %-14s over %-20s %+6.1f%%\n", DataTypeName(type),
                    network.name.c_str(),
                    (plain - deflate) / plain * 100.0);
      }
    }
  }
  return 0;
}
