#include "mapred/local_runner.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "io/checksum.h"
#include "io/merge.h"
#include "mapred/fault_injector.h"
#include "mapred/map_output.h"
#include "mapred/null_formats.h"
#include "mapred/partitioner.h"

namespace mrmb {

namespace {

// Prepends attempt context to an error while keeping its code (so callers
// can still dispatch on kDataLoss / kDeadlineExceeded).
Status Annotate(const Status& status, const std::string& prefix) {
  return Status(status.code(), prefix + ": " + status.message());
}

// Cancels overdue attempts. Each attempt arms a deadline when it actually
// starts running (not when it is queued) and disarms it on completion; a
// single timer thread fires the earliest pending deadline by flipping the
// attempt's CancelToken. The attempt observes the token at its next
// cancellation point and bails out with DeadlineExceeded.
class Watchdog {
 public:
  // timeout_ms <= 0 disables the watchdog (Arm becomes a no-op).
  explicit Watchdog(int64_t timeout_ms) : timeout_ms_(timeout_ms) {
    if (timeout_ms_ > 0) thread_ = std::thread([this] { Loop(); });
  }

  ~Watchdog() {
    if (thread_.joinable()) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
      }
      cv_.notify_all();
      thread_.join();
    }
  }

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  // Schedules `token` for cancellation timeout_ms from now. Returns a
  // ticket for Disarm (0 when disabled). `token` must stay alive until
  // Disarm returns.
  int64_t Arm(CancelToken* token) {
    if (timeout_ms_ <= 0) return 0;
    std::lock_guard<std::mutex> lock(mutex_);
    const int64_t ticket = ++last_ticket_;
    entries_.push_back({ticket,
                        std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(timeout_ms_),
                        token});
    cv_.notify_all();
    return ticket;
  }

  void Disarm(int64_t ticket) {
    if (ticket == 0) return;
    std::lock_guard<std::mutex> lock(mutex_);
    std::erase_if(entries_,
                  [ticket](const Entry& e) { return e.ticket == ticket; });
  }

 private:
  struct Entry {
    int64_t ticket;
    std::chrono::steady_clock::time_point deadline;
    CancelToken* token;
  };

  void Loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!shutdown_) {
      const auto now = std::chrono::steady_clock::now();
      for (const Entry& e : entries_) {
        if (e.deadline <= now) e.token->Cancel();
      }
      std::erase_if(entries_,
                    [now](const Entry& e) { return e.deadline <= now; });
      if (entries_.empty()) {
        cv_.wait(lock);
        continue;
      }
      auto earliest = entries_.front().deadline;
      for (const Entry& e : entries_) earliest = std::min(earliest, e.deadline);
      cv_.wait_until(lock, earliest);
    }
  }

  const int64_t timeout_ms_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Entry> entries_;
  int64_t last_ticket_ = 0;
  bool shutdown_ = false;
  std::thread thread_;
};

// Map-side context: partitions each emitted record, collects into a bounded
// KvBuffer, spills sorted runs when full. Errors (oversized record,
// watchdog cancellation) stick in status(); once set, further Emits are
// no-ops and Finalize propagates the error.
class LocalMapContext final : public MapContext {
 public:
  LocalMapContext(const JobConf& conf, int task_id,
                  std::unique_ptr<Partitioner> partitioner,
                  std::unique_ptr<Reducer> combiner, CancelToken* cancel)
      : conf_(conf),
        task_id_(task_id),
        partitioner_(std::move(partitioner)),
        combiner_(std::move(combiner)),
        cancel_(cancel),
        buffer_(conf.record.type, conf.num_reduces,
                static_cast<size_t>(
                    static_cast<double>(conf.io_sort_bytes) *
                    conf.spill_percent)) {
    // Partition sorts are independent, so each spill can fan them out over
    // a pool. The pool must be dedicated: attempts already run on the
    // runner's shared pool, and ThreadPool::Wait() waits for ALL submitted
    // tasks — nesting would deadlock. Byte output is identical either way.
    const int sort_threads =
        conf.sort_threads > 0 ? conf.sort_threads : conf.local_threads;
    if (sort_threads > 1) {
      sort_pool_ = std::make_unique<ThreadPool>(sort_threads);
    }
  }

  void Emit(std::string_view key, std::string_view value) override {
    if (!status_.ok()) return;
    if (cancel_ != nullptr && cancel_->cancelled()) {
      status_ = Status::DeadlineExceeded(
          StringPrintf("map task %d cancelled by watchdog after %lld emits",
                       task_id_, static_cast<long long>(emitted_)));
      return;
    }
    const int partition =
        partitioner_->Partition(key, emitted_, conf_.num_reduces);
    if (!buffer_.Append(partition, key, value)) {
      if (!buffer_.Fits(key, value)) {
        status_ = Status::ResourceExhausted(StringPrintf(
            "map task %d: record (key %zu B, value %zu B) can never fit the "
            "sort buffer (capacity %zu B = io_sort_bytes * spill_percent)",
            task_id_, key.size(), value.size(), buffer_.capacity()));
        return;
      }
      SpillBuffer();
      MRMB_CHECK(buffer_.Append(partition, key, value));
    }
    ++emitted_;
  }

  const JobConf& conf() const override { return conf_; }
  int task_id() const override { return task_id_; }
  const Status& status() const { return status_; }

  // Finishes the task: final spill + merge to a single sealed segment.
  Result<SpillSegment> Finalize() {
    MRMB_RETURN_IF_ERROR(status_);
    if (buffer_.records() > 0 || spills_.empty()) SpillBuffer();
    if (spills_.size() == 1) return std::move(spills_[0]);
    std::vector<const SpillSegment*> views;
    views.reserve(spills_.size());
    for (const SpillSegment& spill : spills_) views.push_back(&spill);
    // Own just-sealed spills; nothing can have corrupted them yet, so skip
    // the read-side verification.
    return MergeSegments(views, ComparatorFor(conf_.record.type),
                         /*verify_checksums=*/false);
  }

  int64_t emitted() const { return emitted_; }
  int64_t spill_count() const { return static_cast<int64_t>(spills_.size()); }
  int64_t combine_removed() const { return combine_removed_; }

 private:
  void SpillBuffer() {
    buffer_.Sort(sort_pool_.get());
    SpillSegment spill = buffer_.ToSpill();
    if (combiner_ != nullptr) {
      const int64_t before = spill.total_records();
      spill = CombineSegment(spill, ComparatorFor(conf_.record.type),
                             combiner_.get(), conf_, task_id_);
      combine_removed_ += before - spill.total_records();
    }
    spills_.push_back(std::move(spill));
    buffer_.Clear();
  }

  const JobConf& conf_;
  int task_id_;
  std::unique_ptr<Partitioner> partitioner_;
  std::unique_ptr<Reducer> combiner_;
  CancelToken* cancel_;
  std::unique_ptr<ThreadPool> sort_pool_;  // null => sort inline
  KvBuffer buffer_;
  std::vector<SpillSegment> spills_;
  int64_t emitted_ = 0;
  int64_t combine_removed_ = 0;
  Status status_;
};

// Reduce-side context that stages output in memory instead of writing it.
// The coordinator commits staged records to the real OutputFormat in task
// order once the attempt has fully succeeded, so failed attempts never leave
// partial output behind and results are identical for any thread count.
class StagedReduceContext final : public ReduceContext {
 public:
  StagedReduceContext(const JobConf& conf, int task_id, CancelToken* cancel)
      : conf_(conf), task_id_(task_id), cancel_(cancel) {}

  void Emit(std::string_view key, std::string_view value) override {
    if (!status_.ok()) return;
    if (cancel_ != nullptr && cancel_->cancelled()) {
      status_ = Status::DeadlineExceeded(StringPrintf(
          "reduce task %d cancelled by watchdog after %zu emits", task_id_,
          staged_.size()));
      return;
    }
    staged_.emplace_back(std::string(key), std::string(value));
  }

  const JobConf& conf() const override { return conf_; }
  int task_id() const override { return task_id_; }
  const Status& status() const { return status_; }

  std::vector<std::pair<std::string, std::string>> TakeOutput() {
    return std::move(staged_);
  }

 private:
  const JobConf& conf_;
  int task_id_;
  CancelToken* cancel_;
  std::vector<std::pair<std::string, std::string>> staged_;
  Status status_;
};

class GroupValues final : public ValueIterator {
 public:
  explicit GroupValues(GroupedIterator* groups) : groups_(groups) {}
  bool Next() override { return groups_->NextValue(); }
  std::string_view value() const override { return groups_->value(); }

 private:
  GroupedIterator* groups_;
};

// Stats of one committed (successful) map attempt. Failed attempts may have
// processed a timing-dependent prefix of their input, so their numbers are
// discarded — only committed attempts feed LocalJobResult, which keeps the
// counters deterministic.
struct MapTaskStats {
  int64_t input_records = 0;
  int64_t output_records = 0;
  int64_t spill_count = 0;
  int64_t combine_removed = 0;
  int64_t output_bytes = 0;
};

struct MapAttemptOutcome {
  Status status;        // OK iff `output`/`stats` are valid
  SpillSegment output;  // sealed (and possibly fault-corrupted) map output
  MapTaskStats stats;
};

struct ReduceTaskOutcome {
  std::vector<std::pair<std::string, std::string>> output;
  int64_t groups = 0;
};

struct ReduceAttemptOutcome {
  Status status;  // OK iff `committed` is valid
  // Map tasks whose partition failed integrity verification; non-empty only
  // with a kDataLoss status. The coordinator re-executes these maps and
  // re-runs the reduce without charging its failure budget.
  std::vector<int> corrupt_maps;
  ReduceTaskOutcome committed;
};

MapAttemptOutcome RunMapAttempt(const JobConf& conf, int task, int attempt,
                                InputFormat* input_format,
                                const InputSplit& split,
                                const MapperFactory& mapper_factory,
                                const PartitionerFactory& partitioner_factory,
                                const ReducerFactory& combiner_factory,
                                const LocalFaultInjector& injector,
                                CancelToken* cancel) {
  MapAttemptOutcome outcome;
  const int64_t delay = injector.MapDelayMs(task, attempt);
  if (delay > 0 && !cancel->SleepFor(delay)) {
    outcome.status = Status::DeadlineExceeded(StringPrintf(
        "map task %d attempt %d cancelled during injected %lld ms stall",
        task, attempt, static_cast<long long>(delay)));
    return outcome;
  }
  if (injector.ShouldFailMap(task, attempt)) {
    outcome.status = Status::Internal(StringPrintf(
        "injected failure of map task %d attempt %d", task, attempt));
    return outcome;
  }

  std::unique_ptr<RecordReader> reader = input_format->CreateReader(conf, split);
  std::unique_ptr<Mapper> mapper = mapper_factory(task);
  // The partitioner seed depends on the task only, never the attempt: a
  // re-executed map must reproduce its output byte for byte, or recovery
  // would change the answer.
  std::unique_ptr<Partitioner> partitioner =
      partitioner_factory != nullptr
          ? partitioner_factory(task)
          : MakePartitioner(conf.pattern,
                            conf.seed + static_cast<uint64_t>(task) * 7919,
                            conf.records_per_map, conf.zipf_exponent);
  LocalMapContext context(
      conf, task, std::move(partitioner),
      combiner_factory != nullptr ? combiner_factory(task) : nullptr, cancel);
  std::string key;
  std::string value;
  while (context.status().ok() && reader->Next(&key, &value)) {
    ++outcome.stats.input_records;
    mapper->Map(key, value, &context);
  }
  Result<SpillSegment> segment = context.Finalize();
  if (!segment.ok()) {
    outcome.status = segment.status();
    return outcome;
  }
  outcome.output = std::move(segment).value();
  // Inject any scheduled bit flips *after* sealing, so the stored CRCs
  // describe the pristine bytes and the flip is detectable downstream.
  injector.MaybeCorruptMapOutput(task, attempt, &outcome.output);
  outcome.stats.output_records = context.emitted();
  outcome.stats.spill_count = context.spill_count();
  outcome.stats.combine_removed = context.combine_removed();
  outcome.stats.output_bytes = outcome.output.total_bytes();
  return outcome;
}

ReduceAttemptOutcome RunReduceAttempt(
    const JobConf& conf, int task, int attempt,
    const std::vector<SpillSegment>& map_outputs,
    const ReducerFactory& reducer_factory, const LocalFaultInjector& injector,
    CancelToken* cancel) {
  ReduceAttemptOutcome outcome;
  const int64_t delay = injector.ReduceDelayMs(task, attempt);
  if (delay > 0 && !cancel->SleepFor(delay)) {
    outcome.status = Status::DeadlineExceeded(StringPrintf(
        "reduce task %d attempt %d cancelled during injected %lld ms stall",
        task, attempt, static_cast<long long>(delay)));
    return outcome;
  }
  if (injector.ShouldFailReduce(task, attempt)) {
    outcome.status = Status::Internal(StringPrintf(
        "injected failure of reduce task %d attempt %d", task, attempt));
    return outcome;
  }

  // Shuffle-read integrity: verify every producer's sealed partition range
  // before consuming a byte of it (Hadoop checks IFile checksums as the
  // fetched segment streams in).
  if (conf.checksum_map_output) {
    for (size_t m = 0; m < map_outputs.size(); ++m) {
      if (!VerifySegmentPartition(map_outputs[m], task).ok()) {
        outcome.corrupt_maps.push_back(static_cast<int>(m));
      }
    }
    if (!outcome.corrupt_maps.empty()) {
      outcome.status = Status::DataLoss(StringPrintf(
          "reduce task %d: %zu map output partition(s) failed CRC32C "
          "verification",
          task, outcome.corrupt_maps.size()));
      return outcome;
    }
  }

  std::vector<std::unique_ptr<RecordStream>> inputs;
  std::vector<const RecordStream*> readers;  // aligned with map ids, for blame
  inputs.reserve(map_outputs.size());
  readers.reserve(map_outputs.size());
  for (const SpillSegment& segment : map_outputs) {
    auto reader = std::make_unique<SegmentReader>(segment.PartitionData(task));
    readers.push_back(reader.get());
    inputs.push_back(std::move(reader));
  }
  const RawComparator* comparator = ComparatorFor(conf.record.type);
  MergeIterator merged(std::move(inputs), comparator);
  GroupedIterator groups(&merged, comparator);
  std::unique_ptr<Reducer> reducer = reducer_factory(task);
  StagedReduceContext context(conf, task, cancel);
  while (context.status().ok() && groups.NextGroup()) {
    ++outcome.committed.groups;
    GroupValues values(&groups);
    reducer->Reduce(groups.group_key(), &values, &context);
  }
  if (!context.status().ok()) {
    outcome.status = context.status();
    return outcome;
  }
  // A malformed stream drops out of the merge heap instead of crashing; it
  // surfaces here. This is the only detection path when checksum
  // verification is disabled (and a second line of defence when it is not).
  for (size_t m = 0; m < readers.size(); ++m) {
    if (!readers[m]->status().ok()) {
      outcome.corrupt_maps.push_back(static_cast<int>(m));
    }
  }
  if (!outcome.corrupt_maps.empty()) {
    outcome.status = Status::DataLoss(StringPrintf(
        "reduce task %d: %zu map output partition(s) were malformed "
        "mid-merge",
        task, outcome.corrupt_maps.size()));
    return outcome;
  }
  outcome.committed.output = context.TakeOutput();
  return outcome;
}

}  // namespace

LocalJobRunner::LocalJobRunner(JobConf conf) : conf_(std::move(conf)) {}

Result<LocalJobResult> LocalJobRunner::Run(
    InputFormat* input_format, const MapperFactory& mapper_factory,
    const ReducerFactory& reducer_factory, OutputFormat* output_format,
    const PartitionerFactory& partitioner_factory,
    const ReducerFactory& combiner_factory) {
  MRMB_RETURN_IF_ERROR(conf_.Validate());
  MRMB_CHECK(input_format != nullptr);
  MRMB_CHECK(output_format != nullptr);
  const auto start = std::chrono::steady_clock::now();

  LocalJobResult result;
  result.reducer_input_records.assign(
      static_cast<size_t>(conf_.num_reduces), 0);
  result.reducer_input_bytes.assign(static_cast<size_t>(conf_.num_reduces),
                                    0);

  const std::vector<InputSplit> splits =
      input_format->GetSplits(conf_, conf_.num_maps);
  if (static_cast<int>(splits.size()) != conf_.num_maps) {
    return Status::Internal("input format returned wrong split count");
  }

  const LocalFaultInjector injector(conf_.local_fault_plan, conf_.seed);
  ThreadPool pool(conf_.local_threads);
  Watchdog watchdog(conf_.task_timeout_ms);

  const size_t num_maps = static_cast<size_t>(conf_.num_maps);
  const size_t num_reduces = static_cast<size_t>(conf_.num_reduces);
  std::vector<SpillSegment> map_outputs(num_maps);
  std::vector<MapTaskStats> map_stats(num_maps);
  // Attempts started per map, any cause — the monotonic attempt index the
  // fault injector keys on, and the task's total attempt budget.
  std::vector<int> map_attempts_started(num_maps, 0);

  // Runs the given map tasks (ascending ids) to committed output, retrying
  // failed attempts wave by wave. Outcomes are processed in task order, so
  // scheduling never changes the result.
  auto run_map_tasks = [&](std::vector<int> tasks) -> Status {
    while (!tasks.empty()) {
      const size_t wave = tasks.size();
      std::vector<MapAttemptOutcome> outcomes(wave);
      std::vector<std::unique_ptr<CancelToken>> tokens(wave);
      std::vector<int> attempt_ids(wave);
      for (size_t i = 0; i < wave; ++i) {
        tokens[i] = std::make_unique<CancelToken>();
        attempt_ids[i] = map_attempts_started[static_cast<size_t>(tasks[i])]++;
      }
      result.map_attempts += static_cast<int64_t>(wave);
      for (size_t i = 0; i < wave; ++i) {
        const int m = tasks[i];
        const int attempt = attempt_ids[i];
        CancelToken* token = tokens[i].get();
        MapAttemptOutcome* slot = &outcomes[i];
        pool.Submit([&, m, attempt, token, slot] {
          // Arm inside the worker: the deadline covers execution, not time
          // spent queued behind other attempts.
          const int64_t ticket = watchdog.Arm(token);
          *slot = RunMapAttempt(conf_, m, attempt, input_format,
                                splits[static_cast<size_t>(m)],
                                mapper_factory, partitioner_factory,
                                combiner_factory, injector, token);
          watchdog.Disarm(ticket);
        });
      }
      pool.Wait();
      std::vector<int> retry;
      for (size_t i = 0; i < wave; ++i) {
        const int m = tasks[i];
        MapAttemptOutcome& outcome = outcomes[i];
        if (outcome.status.ok()) {
          map_outputs[static_cast<size_t>(m)] = std::move(outcome.output);
          map_stats[static_cast<size_t>(m)] = outcome.stats;
          continue;
        }
        if (outcome.status.code() == StatusCode::kDeadlineExceeded) {
          ++result.watchdog_timeouts;
        }
        if (map_attempts_started[static_cast<size_t>(m)] >=
            conf_.max_task_attempts) {
          return Annotate(outcome.status,
                          StringPrintf("map task %d failed after %d attempts",
                                       m, conf_.max_task_attempts));
        }
        ++result.map_retries;
        retry.push_back(m);
      }
      tasks = std::move(retry);
    }
    return Status::OK();
  };

  // ---- Map phase -----------------------------------------------------
  {
    std::vector<int> all_maps(num_maps);
    for (size_t m = 0; m < num_maps; ++m) all_maps[m] = static_cast<int>(m);
    MRMB_RETURN_IF_ERROR(run_map_tasks(std::move(all_maps)));
  }

  // ---- Shuffle + reduce phase -----------------------------------------
  // Reduce attempts also run in retry waves. A genuine failure charges the
  // reduce's own budget; a corrupt-input DataLoss instead re-executes the
  // producing maps (charging *their* budgets) and re-runs the reduce free
  // of charge — losing your input is the producer's fault, Hadoop-style.
  std::vector<ReduceTaskOutcome> reduce_committed(num_reduces);
  std::vector<int> reduce_attempts_started(num_reduces, 0);
  std::vector<int> reduce_failures(num_reduces, 0);
  std::vector<int> pending(num_reduces);
  for (size_t r = 0; r < num_reduces; ++r) pending[r] = static_cast<int>(r);
  while (!pending.empty()) {
    const size_t wave = pending.size();
    std::vector<ReduceAttemptOutcome> outcomes(wave);
    std::vector<std::unique_ptr<CancelToken>> tokens(wave);
    std::vector<int> attempt_ids(wave);
    for (size_t i = 0; i < wave; ++i) {
      tokens[i] = std::make_unique<CancelToken>();
      attempt_ids[i] =
          reduce_attempts_started[static_cast<size_t>(pending[i])]++;
    }
    result.reduce_attempts += static_cast<int64_t>(wave);
    for (size_t i = 0; i < wave; ++i) {
      const int r = pending[i];
      const int attempt = attempt_ids[i];
      CancelToken* token = tokens[i].get();
      ReduceAttemptOutcome* slot = &outcomes[i];
      pool.Submit([&, r, attempt, token, slot] {
        const int64_t ticket = watchdog.Arm(token);
        *slot = RunReduceAttempt(conf_, r, attempt, map_outputs,
                                 reducer_factory, injector, token);
        watchdog.Disarm(ticket);
      });
    }
    pool.Wait();
    std::vector<int> retry;
    std::vector<bool> remap_flag(num_maps, false);
    for (size_t i = 0; i < wave; ++i) {
      const int r = pending[i];
      ReduceAttemptOutcome& outcome = outcomes[i];
      if (outcome.status.ok()) {
        reduce_committed[static_cast<size_t>(r)] =
            std::move(outcome.committed);
        continue;
      }
      if (!outcome.corrupt_maps.empty()) {
        result.corruptions_detected +=
            static_cast<int64_t>(outcome.corrupt_maps.size());
        for (int m : outcome.corrupt_maps) {
          remap_flag[static_cast<size_t>(m)] = true;
        }
        ++result.reduce_retries;
        retry.push_back(r);
        continue;
      }
      if (outcome.status.code() == StatusCode::kDeadlineExceeded) {
        ++result.watchdog_timeouts;
      }
      ++reduce_failures[static_cast<size_t>(r)];
      if (reduce_failures[static_cast<size_t>(r)] >= conf_.max_task_attempts) {
        return Annotate(outcome.status,
                        StringPrintf("reduce task %d failed after %d attempts",
                                     r, conf_.max_task_attempts));
      }
      ++result.reduce_retries;
      retry.push_back(r);
    }
    std::vector<int> remap;
    for (size_t m = 0; m < num_maps; ++m) {
      if (remap_flag[m]) remap.push_back(static_cast<int>(m));
    }
    if (!remap.empty()) {
      for (int m : remap) {
        if (map_attempts_started[static_cast<size_t>(m)] >=
            conf_.max_task_attempts) {
          return Status::DataLoss(StringPrintf(
              "map task %d output still corrupt after %d attempts", m,
              conf_.max_task_attempts));
        }
      }
      // Re-executions are retries of committed maps (lost output), on top
      // of the attempt accounting run_map_tasks does itself.
      result.map_retries += static_cast<int64_t>(remap.size());
      MRMB_RETURN_IF_ERROR(run_map_tasks(std::move(remap)));
    }
    pending = std::move(retry);
  }

  // ---- Commit: aggregate counters and write output in task order -------
  for (size_t m = 0; m < num_maps; ++m) {
    const MapTaskStats& stats = map_stats[m];
    result.map_input_records += stats.input_records;
    result.map_output_records += stats.output_records;
    result.spill_count += stats.spill_count;
    result.combine_removed_records += stats.combine_removed;
    result.map_output_bytes += stats.output_bytes;
  }
  for (size_t r = 0; r < num_reduces; ++r) {
    for (size_t m = 0; m < num_maps; ++m) {
      const SpillSegment::PartitionRange& range =
          map_outputs[m].partitions[r];
      result.reducer_input_records[r] += range.records;
      result.reducer_input_bytes[r] += range.length;
    }
    result.reduce_groups += reduce_committed[r].groups;
    std::unique_ptr<RecordWriter> writer =
        output_format->CreateWriter(conf_, static_cast<int>(r));
    for (const auto& [key, value] : reduce_committed[r].output) {
      writer->Write(key, value);
      result.output_records += 1;
      result.output_bytes += static_cast<int64_t>(key.size() + value.size());
    }
    MRMB_RETURN_IF_ERROR(writer->Close());
  }
  for (int64_t records : result.reducer_input_records) {
    result.reduce_input_records += records;
  }

  const auto end = std::chrono::steady_clock::now();
  result.wall_seconds =
      std::chrono::duration<double>(end - start).count();
  return result;
}

Result<LocalJobResult> LocalJobRunner::RunStandalone(const JobConf& conf) {
  LocalJobRunner runner(conf);
  NullInputFormat input;
  NullOutputFormat output;
  return runner.Run(
      &input,
      [&conf](int task_id) {
        return std::make_unique<GeneratingMapper>(conf, task_id);
      },
      [](int) { return std::make_unique<DiscardingReducer>(); }, &output);
}

}  // namespace mrmb
