#include "common/strings.h"

#include <gtest/gtest.h>

namespace mrmb {
namespace {

TEST(SplitStringTest, Basic) {
  const auto parts = SplitString("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitStringTest, KeepsEmptyFields) {
  const auto parts = SplitString(",a,,b,", ',');
  ASSERT_EQ(parts.size(), 5u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[4], "");
}

TEST(SplitStringTest, EmptyInputYieldsOneEmptyField) {
  const auto parts = SplitString("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StripWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  hi  "), "hi");
  EXPECT_EQ(StripWhitespace("\t x \n"), "x");
  EXPECT_EQ(StripWhitespace("x"), "x");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("a b"), "a b");
}

TEST(ToLowerTest, LowersAsciiOnly) {
  EXPECT_EQ(ToLower("MixedCASE123"), "mixedcase123");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-flag", "--"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("", "a"));
  EXPECT_TRUE(StartsWith("a", "a"));
}

TEST(StringPrintfTest, FormatsLikePrintf) {
  EXPECT_EQ(StringPrintf("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StringPrintf("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StringPrintf("empty"), "empty");
}

TEST(StringPrintfTest, LongOutput) {
  const std::string long_arg(5000, 'y');
  const std::string out = StringPrintf("[%s]", long_arg.c_str());
  EXPECT_EQ(out.size(), 5002u);
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out.back(), ']');
}

}  // namespace
}  // namespace mrmb
