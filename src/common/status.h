// Status and Result<T>: exception-free error handling for the mrmb library.
//
// Conventions follow the RocksDB/Arrow idiom: functions that can fail return
// a Status (or a Result<T> when they also produce a value). Callers must
// check ok() before using the value. Fatal invariant violations use
// MRMB_CHECK from common/logging.h instead.

#ifndef MRMB_COMMON_STATUS_H_
#define MRMB_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace mrmb {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kUnimplemented,
  kIOError,
  // Stored or in-flight bytes failed an integrity check (e.g. a CRC32C
  // mismatch on a map-output partition). Recoverable by re-executing the
  // producer, never by retrying the read.
  kDataLoss,
  // An attempt overran its watchdog deadline and was cancelled.
  kDeadlineExceeded,
  // The operation was deliberately torn down mid-flight (e.g. a simulated
  // process crash from a crash_at fault point). Durable state on disk is
  // consistent; the job can be resumed from its journal.
  kAborted,
};

// Returns a stable, human-readable name such as "InvalidArgument".
const char* StatusCodeName(StatusCode code);

// A lightweight success/error value. Copyable and movable; the OK status
// carries no allocation.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T> holds either a T or an error Status. Accessing the value of an
// error Result is a checked fatal error.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work
  // in functions returning Result<T>.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                          // NOLINT(runtime/explicit)
      : value_(std::move(status)) {
    // An OK status carries no value; normalize to an error so callers can't
    // observe a valueless "ok" Result.
    if (std::get<Status>(value_).ok()) {
      value_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(value_);
  }

  const T& value() const& {
    AbortIfError();
    return std::get<T>(value_);
  }
  T& value() & {
    AbortIfError();
    return std::get<T>(value_);
  }
  T&& value() && {
    AbortIfError();
    return std::get<T>(std::move(value_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const;

  std::variant<T, Status> value_;
};

namespace internal {
// Defined in status.cc; aborts the process with the status message.
[[noreturn]] void DieOnBadResultAccess(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) internal::DieOnBadResultAccess(std::get<Status>(value_));
}

// Propagates errors to the caller; usable in functions returning Status.
#define MRMB_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::mrmb::Status _mrmb_status = (expr);            \
    if (!_mrmb_status.ok()) return _mrmb_status;     \
  } while (false)

// Evaluates a Result<T> expression; on error returns its Status, otherwise
// moves the value into `lhs`.
#define MRMB_ASSIGN_OR_RETURN(lhs, expr)                          \
  MRMB_ASSIGN_OR_RETURN_IMPL_(                                    \
      MRMB_STATUS_CONCAT_(_mrmb_result, __LINE__), lhs, expr)
#define MRMB_ASSIGN_OR_RETURN_IMPL_(result, lhs, expr) \
  auto result = (expr);                                \
  if (!result.ok()) return result.status();            \
  lhs = std::move(result).value()
#define MRMB_STATUS_CONCAT_(a, b) MRMB_STATUS_CONCAT_IMPL_(a, b)
#define MRMB_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace mrmb

#endif  // MRMB_COMMON_STATUS_H_
