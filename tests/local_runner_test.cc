#include "mapred/local_runner.h"

#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "io/byte_buffer.h"
#include "mapred/null_formats.h"
#include "mapred/partitioner.h"

namespace mrmb {
namespace {

JobConf SmallConf(DistributionPattern pattern = DistributionPattern::kAverage,
                  int maps = 4, int reduces = 4, int64_t records = 100) {
  JobConf conf;
  conf.num_maps = maps;
  conf.num_reduces = reduces;
  conf.records_per_map = records;
  conf.pattern = pattern;
  conf.record.key_size = 16;
  conf.record.value_size = 32;
  conf.record.num_unique_keys = reduces;
  conf.seed = 42;
  return conf;
}

TEST(LocalRunnerTest, StandaloneJobCounts) {
  const JobConf conf = SmallConf();
  auto result = LocalJobRunner::RunStandalone(conf);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->map_input_records, 4);  // one dummy record per split
  EXPECT_EQ(result->map_output_records, 400);
  EXPECT_EQ(result->reduce_input_records, 400);
  EXPECT_GT(result->map_output_bytes, 400 * (16 + 32));
  // DiscardingReducer emits nothing.
  EXPECT_EQ(result->output_records, 0);
}

TEST(LocalRunnerTest, AverageDistributionIsExactlyEven) {
  const JobConf conf = SmallConf(DistributionPattern::kAverage, 4, 4, 100);
  auto result = LocalJobRunner::RunStandalone(conf);
  ASSERT_TRUE(result.ok());
  for (int64_t records : result->reducer_input_records) {
    EXPECT_EQ(records, 100);  // 400 records round-robin over 4 reducers
  }
}

TEST(LocalRunnerTest, SkewDistributionShape) {
  const JobConf conf = SmallConf(DistributionPattern::kSkewed, 2, 8, 1000);
  auto result = LocalJobRunner::RunStandalone(conf);
  ASSERT_TRUE(result.ok());
  const auto& loads = result->reducer_input_records;
  const int64_t total =
      std::accumulate(loads.begin(), loads.end(), int64_t{0});
  EXPECT_EQ(total, 2000);
  // Reducer 0 holds at least its 50% quota.
  EXPECT_GE(loads[0], 1000);
  EXPECT_GE(loads[1], 500);
  EXPECT_GE(loads[2], 250);
  EXPECT_LT(loads[3], 200);
}

TEST(LocalRunnerTest, ReducerLoadsMatchPartitionPlan) {
  // The functional engine must land exactly on PlanPartitionCounts.
  for (DistributionPattern pattern :
       {DistributionPattern::kAverage, DistributionPattern::kRandom,
        DistributionPattern::kSkewed}) {
    const JobConf conf = SmallConf(pattern, 3, 5, 200);
    auto result = LocalJobRunner::RunStandalone(conf);
    ASSERT_TRUE(result.ok());
    std::vector<int64_t> expected(5, 0);
    for (int m = 0; m < conf.num_maps; ++m) {
      const auto counts = PlanPartitionCounts(
          pattern, conf.seed + static_cast<uint64_t>(m) * 7919,
          conf.records_per_map, conf.num_reduces);
      for (size_t r = 0; r < expected.size(); ++r) expected[r] += counts[r];
    }
    EXPECT_EQ(result->reducer_input_records, expected)
        << DistributionPatternName(pattern);
  }
}

TEST(LocalRunnerTest, GroupingSeesUniqueKeysPerReducer) {
  // With round-robin over R reducers and keys cycling over R unique ids,
  // record index i (key id i%R) goes to reducer i%R: each reducer sees
  // exactly one distinct key.
  const JobConf conf = SmallConf(DistributionPattern::kAverage, 2, 4, 100);
  auto result = LocalJobRunner::RunStandalone(conf);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->reduce_groups, 4);
}

TEST(LocalRunnerTest, SpillsWhenBufferSmall) {
  JobConf conf = SmallConf();
  conf.io_sort_bytes = 4096;  // forces many spills for 100 records/map
  auto result = LocalJobRunner::RunStandalone(conf);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->spill_count, conf.num_maps);
  // Spilling must not change any count.
  EXPECT_EQ(result->map_output_records, 400);
  EXPECT_EQ(result->reduce_input_records, 400);
}

TEST(LocalRunnerTest, SpillCountMatchesBufferMath) {
  JobConf conf = SmallConf(DistributionPattern::kAverage, 1, 1, 10);
  conf.record.key_size = 16;
  conf.record.value_size = 32;
  // Framed record: (16+4) + (32+4) + 2 vints = 58 bytes. Buffer of
  // 3 records: ceil(10/3) = 4 spills.
  conf.io_sort_bytes = 58 * 3;
  conf.spill_percent = 1.0;
  auto result = LocalJobRunner::RunStandalone(conf);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->spill_count, 4);
}

TEST(LocalRunnerTest, DeterministicAcrossRuns) {
  const JobConf conf = SmallConf(DistributionPattern::kRandom, 3, 4, 200);
  auto a = LocalJobRunner::RunStandalone(conf);
  auto b = LocalJobRunner::RunStandalone(conf);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->reducer_input_records, b->reducer_input_records);
  EXPECT_EQ(a->reducer_input_bytes, b->reducer_input_bytes);
  EXPECT_EQ(a->map_output_bytes, b->map_output_bytes);
}

TEST(LocalRunnerTest, TextTypeRuns) {
  JobConf conf = SmallConf();
  conf.record.type = DataType::kText;
  auto result = LocalJobRunner::RunStandalone(conf);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->map_output_records, 400);
  EXPECT_EQ(result->reduce_input_records, 400);
}

TEST(LocalRunnerTest, InvalidConfRejected) {
  JobConf conf = SmallConf();
  conf.num_reduces = 0;
  auto result = LocalJobRunner::RunStandalone(conf);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// ---- A real user-defined job: word count --------------------------------

// Emits (word, 1) for each word in the value text.
class WordCountMapper : public Mapper {
 public:
  void Map(std::string_view /*key*/, std::string_view value,
           MapContext* context) override {
    // `value` is a serialized Text.
    Text text;
    BufferReader reader(value);
    MRMB_CHECK_OK(text.Deserialize(&reader));
    size_t start = 0;
    const std::string& s = text.value();
    for (size_t i = 0; i <= s.size(); ++i) {
      if (i == s.size() || s[i] == ' ') {
        if (i > start) {
          BufferWriter key_writer;
          Text(s.substr(start, i - start)).Serialize(&key_writer);
          BufferWriter value_writer;
          LongWritable(1).Serialize(&value_writer);
          context->Emit(key_writer.data(), value_writer.data());
        }
        start = i + 1;
      }
    }
  }
};

class SumReducer : public Reducer {
 public:
  void Reduce(std::string_view key, ValueIterator* values,
              ReduceContext* context) override {
    int64_t sum = 0;
    while (values->Next()) {
      LongWritable one;
      BufferReader reader(values->value());
      MRMB_CHECK_OK(one.Deserialize(&reader));
      sum += one.value();
    }
    BufferWriter writer;
    LongWritable(sum).Serialize(&writer);
    context->Emit(key, writer.data());
  }
};

// Input format yielding one line of text per record.
class LinesInputFormat : public InputFormat {
 public:
  explicit LinesInputFormat(std::vector<std::string> lines)
      : lines_(std::move(lines)) {}

  std::vector<InputSplit> GetSplits(const JobConf&, int num_splits) override {
    std::vector<InputSplit> splits;
    for (int i = 0; i < num_splits; ++i) {
      InputSplit split;
      split.split_id = i;
      splits.push_back(split);
    }
    return splits;
  }

  std::unique_ptr<RecordReader> CreateReader(
      const JobConf& conf, const InputSplit& split) override {
    // Round-robin lines over splits.
    std::vector<std::string> mine;
    for (size_t i = static_cast<size_t>(split.split_id); i < lines_.size();
         i += static_cast<size_t>(conf.num_maps)) {
      mine.push_back(lines_[i]);
    }
    class Reader : public RecordReader {
     public:
      explicit Reader(std::vector<std::string> lines)
          : lines_(std::move(lines)) {}
      bool Next(std::string* key, std::string* value) override {
        if (index_ >= lines_.size()) return false;
        key->clear();
        BufferWriter writer(value);
        value->clear();
        Text(lines_[index_++]).Serialize(&writer);
        return true;
      }

     private:
      std::vector<std::string> lines_;
      size_t index_ = 0;
    };
    return std::make_unique<Reader>(std::move(mine));
  }

 private:
  std::vector<std::string> lines_;
};

// Collects reduce output into a map for assertions.
class CollectingOutputFormat : public OutputFormat {
 public:
  std::unique_ptr<RecordWriter> CreateWriter(const JobConf&,
                                             int /*partition*/) override {
    class Writer : public RecordWriter {
     public:
      explicit Writer(std::map<std::string, int64_t>* out) : out_(out) {}
      void Write(std::string_view key, std::string_view value) override {
        Text word;
        BufferReader key_reader(key);
        MRMB_CHECK_OK(word.Deserialize(&key_reader));
        LongWritable count;
        BufferReader value_reader(value);
        MRMB_CHECK_OK(count.Deserialize(&value_reader));
        (*out_)[word.value()] += count.value();
      }
      Status Close() override { return Status::OK(); }

     private:
      std::map<std::string, int64_t>* out_;
    };
    return std::make_unique<Writer>(&counts_);
  }

  const std::map<std::string, int64_t>& counts() const { return counts_; }

 private:
  std::map<std::string, int64_t> counts_;
};

TEST(LocalRunnerTest, WordCountEndToEnd) {
  JobConf conf;
  conf.num_maps = 2;
  conf.num_reduces = 2;
  conf.record.type = DataType::kText;  // key type drives sort/merge
  conf.pattern = DistributionPattern::kAverage;  // ignored: custom job
  LinesInputFormat input({"the quick brown fox", "the lazy dog",
                          "the quick dog"});
  CollectingOutputFormat output;

  // Word count partitions by key hash so equal words meet at one reducer.
  LocalJobRunner runner(conf);
  auto result = runner.Run(
      &input, [](int) { return std::make_unique<WordCountMapper>(); },
      [](int) { return std::make_unique<SumReducer>(); }, &output,
      [](int) { return std::make_unique<HashPartitioner>(); });
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const auto& counts = output.counts();
  EXPECT_EQ(counts.at("the"), 3);
  EXPECT_EQ(counts.at("quick"), 2);
  EXPECT_EQ(counts.at("dog"), 2);
  EXPECT_EQ(counts.at("brown"), 1);
  EXPECT_EQ(counts.at("fox"), 1);
  EXPECT_EQ(counts.at("lazy"), 1);
  EXPECT_EQ(result->reduce_groups, 6);
  EXPECT_EQ(result->output_records, 6);
}

}  // namespace
}  // namespace mrmb
