file(REMOVE_RECURSE
  "CMakeFiles/fig7_resource_utilization.dir/fig7_resource_utilization.cc.o"
  "CMakeFiles/fig7_resource_utilization.dir/fig7_resource_utilization.cc.o.d"
  "fig7_resource_utilization"
  "fig7_resource_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_resource_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
