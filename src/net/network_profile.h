// Interconnect models.
//
// A NetworkProfile captures what distinguishes the interconnects the paper
// evaluates (Sect. 5.1): raw signalling rate, application-visible protocol
// efficiency, one-way latency, per-message software overhead, and the host
// CPU cost per transferred byte (the TCP/IP stack cost that RDMA bypasses).
//
// Calibration targets come from the paper's Fig. 7 resource-utilization
// traces: application-level single-NIC receive peaks of ~110 MB/s (1 GigE),
// ~520 MB/s (10 GigE, workload-limited), and ~950 MB/s (IPoIB QDR), plus the
// published character of IPoIB (high host CPU cost; far below raw IB rate)
// and RDMA (kernel bypass: minimal CPU cost, near-raw bandwidth).

#ifndef MRMB_NET_NETWORK_PROFILE_H_
#define MRMB_NET_NETWORK_PROFILE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace mrmb {

struct NetworkProfile {
  std::string name;
  // Raw signalling rate in bits/second (e.g. 1e9 for 1 GigE).
  double raw_bandwidth_bps = 0;
  // Fraction of the raw rate achievable by application payload. IPoIB is
  // notoriously inefficient (TCP/IP emulation over IB verbs); RDMA gets
  // close to the wire rate.
  double efficiency = 1.0;
  // One-way propagation + stack latency per message.
  SimTime latency = 0;
  // Fixed sender-side software overhead per message (connection handling,
  // syscalls, segmentation setup).
  SimTime per_message_overhead = 0;
  // Host CPU cost per payload byte, in core-seconds/byte, charged at the
  // sender and at the receiver respectively. This is what makes IPoIB's job
  // times only modestly better than 10 GigE despite 3.2x raw bandwidth, and
  // what RDMA eliminates.
  double sender_cpu_per_byte = 0;
  double receiver_cpu_per_byte = 0;
  // True for kernel-bypass transports; enables the RDMA shuffle engine's
  // fetch/merge overlap in the MapReduce simulation.
  bool rdma = false;

  // Application-visible bandwidth in bytes/second.
  double app_bandwidth_Bps() const {
    return raw_bandwidth_bps * efficiency / 8.0;
  }
};

// The five interconnects evaluated in the paper.
NetworkProfile OneGigE();             // 1 GigE
NetworkProfile TenGigE();             // 10 GigE
NetworkProfile IpoibQdr();            // IPoIB over QDR InfiniBand (32 Gbps)
NetworkProfile IpoibFdr();            // IPoIB over FDR InfiniBand (56 Gbps)
NetworkProfile RdmaFdr();             // native-IB RDMA over FDR (56 Gbps)

// Looks a profile up by the names used on benchmark command lines:
// "1gige", "10gige", "ipoib-qdr", "ipoib-fdr", "rdma-fdr" (case-insensitive,
// with a few aliases). Returns InvalidArgument for unknown names.
Result<NetworkProfile> NetworkProfileByName(const std::string& name);

// All built-in profiles, in ascending capability order.
std::vector<NetworkProfile> AllNetworkProfiles();

}  // namespace mrmb

#endif  // MRMB_NET_NETWORK_PROFILE_H_
