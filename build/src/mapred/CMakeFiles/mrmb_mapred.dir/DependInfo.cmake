
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapred/job_conf.cc" "src/mapred/CMakeFiles/mrmb_mapred.dir/job_conf.cc.o" "gcc" "src/mapred/CMakeFiles/mrmb_mapred.dir/job_conf.cc.o.d"
  "/root/repo/src/mapred/local_runner.cc" "src/mapred/CMakeFiles/mrmb_mapred.dir/local_runner.cc.o" "gcc" "src/mapred/CMakeFiles/mrmb_mapred.dir/local_runner.cc.o.d"
  "/root/repo/src/mapred/map_output.cc" "src/mapred/CMakeFiles/mrmb_mapred.dir/map_output.cc.o" "gcc" "src/mapred/CMakeFiles/mrmb_mapred.dir/map_output.cc.o.d"
  "/root/repo/src/mapred/null_formats.cc" "src/mapred/CMakeFiles/mrmb_mapred.dir/null_formats.cc.o" "gcc" "src/mapred/CMakeFiles/mrmb_mapred.dir/null_formats.cc.o.d"
  "/root/repo/src/mapred/partitioner.cc" "src/mapred/CMakeFiles/mrmb_mapred.dir/partitioner.cc.o" "gcc" "src/mapred/CMakeFiles/mrmb_mapred.dir/partitioner.cc.o.d"
  "/root/repo/src/mapred/sim_runner.cc" "src/mapred/CMakeFiles/mrmb_mapred.dir/sim_runner.cc.o" "gcc" "src/mapred/CMakeFiles/mrmb_mapred.dir/sim_runner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dfs/CMakeFiles/mrmb_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mrmb_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/mrmb_io.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mrmb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mrmb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mrmb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
