file(REMOVE_RECURSE
  "CMakeFiles/job_conf_test.dir/job_conf_test.cc.o"
  "CMakeFiles/job_conf_test.dir/job_conf_test.cc.o.d"
  "job_conf_test"
  "job_conf_test.pdb"
  "job_conf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/job_conf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
