// Ablation: reduce slow-start (mapreduce.job.reduce.slowstart.completedmaps).
//
// With slowstart=1.0 the shuffle cannot overlap the map phase at all; with
// 0.05 (Hadoop's default) reducers launch after the first map and fetch
// as outputs appear. The benefit is larger on slower networks (there is
// more shuffle time to hide).

#include "bench/bench_util.h"

int main() {
  using namespace mrmb;
  std::printf("=== Ablation: reduce slow-start fraction ===\n");

  SweepTable table("Job time vs slowstart (MR-AVG 16GB, Cluster A)",
                   "Slowstart");
  for (const NetworkProfile& network : {OneGigE(), IpoibQdr()}) {
    for (double slowstart : {0.05, 0.25, 0.5, 0.75, 1.0}) {
      BenchmarkOptions options;
      options.network = network;
      options.shuffle_bytes = 16 * kGB;
      options.num_maps = 16;
      options.num_reduces = 8;
      options.num_slaves = 4;
      options.key_size = 512;
      options.value_size = 512;
      JobConf conf = options.ToJobConf();
      conf.slowstart = slowstart;
      SimCluster cluster(options.ToClusterSpec());
      SimJobRunner runner(&cluster, conf, options.cost);
      auto result = runner.Run();
      if (!result.ok()) {
        std::fprintf(stderr, "FATAL: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      const std::string label = std::to_string(slowstart);
      std::printf("  %-22s %-6s %10.3f s\n", network.name.c_str(),
                  label.c_str(), result->job_seconds);
      table.Add(network.name, label, result->job_seconds);
    }
  }
  table.Print(&std::cout);
  return 0;
}
