#include "sim/fairshare.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace mrmb {

namespace {
constexpr double kEps = 1e-9;
}  // namespace

std::vector<double> SolveMaxMinFair(const MaxMinProblem& problem) {
  const size_t num_flows = problem.flow_links.size();
  const size_t num_links = problem.link_capacity.size();
  MRMB_CHECK(problem.rate_limit.empty() ||
             problem.rate_limit.size() == num_flows);

  std::vector<double> rate(num_flows, 0.0);
  if (num_flows == 0) return rate;

  std::vector<double> residual = problem.link_capacity;
  std::vector<int32_t> unfrozen_on_link(num_links, 0);
  std::vector<bool> frozen(num_flows, false);

  auto cap_of = [&](size_t f) {
    return problem.rate_limit.empty() ? kUnlimitedRate : problem.rate_limit[f];
  };

  size_t unfrozen_count = num_flows;
  // Flows with zero cap or crossing a zero-capacity link freeze at 0
  // immediately.
  for (size_t f = 0; f < num_flows; ++f) {
    for (int32_t link : problem.flow_links[f]) {
      MRMB_CHECK_GE(link, 0);
      MRMB_CHECK_LT(static_cast<size_t>(link), num_links);
    }
    if (problem.flow_links[f].empty()) {
      MRMB_CHECK(std::isfinite(cap_of(f)))
          << "flow crossing no links must have a finite rate cap";
    }
    bool dead = cap_of(f) <= kEps;
    for (int32_t link : problem.flow_links[f]) {
      if (problem.link_capacity[link] <= kEps) dead = true;
    }
    if (dead) {
      frozen[f] = true;
      --unfrozen_count;
    } else {
      for (int32_t link : problem.flow_links[f]) ++unfrozen_on_link[link];
    }
  }

  while (unfrozen_count > 0) {
    // Largest equal increment all unfrozen flows can take.
    double inc = kUnlimitedRate;
    for (size_t l = 0; l < num_links; ++l) {
      if (unfrozen_on_link[l] > 0) {
        inc = std::min(inc, residual[l] / unfrozen_on_link[l]);
      }
    }
    for (size_t f = 0; f < num_flows; ++f) {
      if (!frozen[f]) inc = std::min(inc, cap_of(f) - rate[f]);
    }
    MRMB_CHECK(std::isfinite(inc))
        << "unbounded allocation: some flow has no binding constraint";
    inc = std::max(inc, 0.0);

    for (size_t f = 0; f < num_flows; ++f) {
      if (!frozen[f]) rate[f] += inc;
    }
    for (size_t l = 0; l < num_links; ++l) {
      residual[l] -= inc * unfrozen_on_link[l];
    }

    // Freeze flows at saturated links or at their cap. At least one flow
    // must freeze per iteration (inc was chosen as the binding minimum), so
    // the loop terminates in <= num_flows iterations.
    size_t frozen_this_round = 0;
    for (size_t f = 0; f < num_flows; ++f) {
      if (frozen[f]) continue;
      bool freeze = rate[f] >= cap_of(f) - kEps;
      if (!freeze) {
        for (int32_t link : problem.flow_links[f]) {
          if (residual[link] <= kEps * std::max(1.0,
                                                problem.link_capacity[link])) {
            freeze = true;
            break;
          }
        }
      }
      if (freeze) {
        frozen[f] = true;
        --unfrozen_count;
        ++frozen_this_round;
        for (int32_t link : problem.flow_links[f]) --unfrozen_on_link[link];
      }
    }
    MRMB_CHECK_GT(frozen_this_round, 0u) << "progressive filling stalled";
  }
  return rate;
}

}  // namespace mrmb
