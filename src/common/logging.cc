#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace mrmb {

namespace {
LogSeverity g_threshold = LogSeverity::kWarning;

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "D";
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
  }
  return "?";
}
}  // namespace

void SetLogThreshold(LogSeverity severity) { g_threshold = severity; }
LogSeverity GetLogThreshold() { return g_threshold; }

namespace internal {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  stream_ << "[" << SeverityTag(severity) << " " << file << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  (void)severity_;
}

LogMessageFatal::LogMessageFatal(const char* file, int line,
                                 const char* condition) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: "
          << condition << " ";
}

LogMessageFatal::~LogMessageFatal() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace mrmb
