// LocalJobRunner — functional, in-process execution of a MapReduce job.
//
// Runs every phase for real on real bytes: mappers emit serialized records
// into a bounded KvBuffer (spilling and merging like Hadoop's map side), the
// "shuffle" hands each reducer its partition slices, and reducers consume a
// k-way merged, grouped stream. Single-threaded and deterministic; the
// correctness tests and the wordcount-style examples run on it. For paper-
// scale performance experiments use SimJobRunner (sim_runner.h), which
// models time instead of burning it.

#ifndef MRMB_MAPRED_LOCAL_RUNNER_H_
#define MRMB_MAPRED_LOCAL_RUNNER_H_

#include <vector>

#include "common/status.h"
#include "mapred/api.h"
#include "mapred/partitioner.h"

namespace mrmb {

// Task-scoped partitioner factory; each map task gets a fresh instance.
using PartitionerFactory =
    std::function<std::unique_ptr<Partitioner>(int task_id)>;

struct LocalJobResult {
  int64_t map_input_records = 0;
  int64_t map_output_records = 0;
  // Records removed by per-spill combining (0 without a combiner).
  int64_t combine_removed_records = 0;
  // IFile-framed intermediate bytes (what the shuffle would move).
  int64_t map_output_bytes = 0;
  int64_t spill_count = 0;
  // Per-reduce shuffle load.
  std::vector<int64_t> reducer_input_records;
  std::vector<int64_t> reducer_input_bytes;
  int64_t reduce_groups = 0;
  int64_t reduce_input_records = 0;
  // Records/bytes handed to the OutputFormat.
  int64_t output_records = 0;
  int64_t output_bytes = 0;
  // Real (host) execution time of Run().
  double wall_seconds = 0;
};

class LocalJobRunner {
 public:
  explicit LocalJobRunner(JobConf conf);

  // Executes the job. All pointers must outlive the call. Returns counters
  // or the first validation/configuration error. `partitioner_factory`
  // defaults (when null) to the benchmark partitioner selected by
  // conf.pattern; ordinary jobs (e.g. word count) pass a HashPartitioner
  // factory.
  // `combiner_factory` (optional) installs a per-spill combine pass, run
  // on every sorted spill before it is sealed — Hadoop's
  // job.setCombinerClass semantics.
  Result<LocalJobResult> Run(InputFormat* input_format,
                             const MapperFactory& mapper_factory,
                             const ReducerFactory& reducer_factory,
                             OutputFormat* output_format,
                             const PartitionerFactory& partitioner_factory =
                                 nullptr,
                             const ReducerFactory& combiner_factory =
                                 nullptr);

  // Convenience: runs the paper's stand-alone micro-benchmark job
  // (NullInputFormat + GeneratingMapper + DiscardingReducer +
  // NullOutputFormat) under `conf`.
  static Result<LocalJobResult> RunStandalone(const JobConf& conf);

  const JobConf& conf() const { return conf_; }

 private:
  JobConf conf_;
};

}  // namespace mrmb

#endif  // MRMB_MAPRED_LOCAL_RUNNER_H_
