// Tests for the calibration document loader: ToJson/ParseCalibrationJson
// round trips (including the optional batched-fetch constants), rejection
// of malformed or out-of-range documents, and the cost-model arithmetic of
// PredictShuffleMs / PredictBatchedShuffleMs.

#include <gtest/gtest.h>

#include <string>

#include "sim/calibration.h"

namespace mrmb {
namespace {

ShuffleCalibration FullCalibration() {
  ShuffleCalibration cal;
  cal.fetch_setup_ms = 0.0125;
  cal.loopback_bandwidth_mbps = 5600.0;
  cal.fit_residual_pct = 4.2;
  cal.samples = 42;
  cal.combiner_output_fraction = 0.25;
  cal.combine_cpu_per_record = 1.5e-8;
  cal.batch_setup_ms = 0.0069;
  cal.batch_entry_ms = 0.0010;
  cal.batch_bandwidth_mbps = 8400.0;
  cal.batch_fit_residual_pct = 3.8;
  cal.reactor_scaling = 1.7;
  return cal;
}

TEST(CalibrationTest, JsonRoundTripsAllFields) {
  const ShuffleCalibration cal = FullCalibration();
  auto parsed = ParseCalibrationJson(cal.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_DOUBLE_EQ(parsed->fetch_setup_ms, cal.fetch_setup_ms);
  EXPECT_DOUBLE_EQ(parsed->loopback_bandwidth_mbps,
                   cal.loopback_bandwidth_mbps);
  EXPECT_DOUBLE_EQ(parsed->fit_residual_pct, cal.fit_residual_pct);
  EXPECT_EQ(parsed->samples, cal.samples);
  EXPECT_DOUBLE_EQ(parsed->combiner_output_fraction,
                   cal.combiner_output_fraction);
  EXPECT_DOUBLE_EQ(parsed->combine_cpu_per_record, cal.combine_cpu_per_record);
  EXPECT_DOUBLE_EQ(parsed->batch_setup_ms, cal.batch_setup_ms);
  EXPECT_DOUBLE_EQ(parsed->batch_entry_ms, cal.batch_entry_ms);
  EXPECT_DOUBLE_EQ(parsed->batch_bandwidth_mbps, cal.batch_bandwidth_mbps);
  EXPECT_DOUBLE_EQ(parsed->batch_fit_residual_pct,
                   cal.batch_fit_residual_pct);
  EXPECT_DOUBLE_EQ(parsed->reactor_scaling, cal.reactor_scaling);
}

TEST(CalibrationTest, BatchKeysAreOptionalAndDefaultToZero) {
  // A document written before the batched probe existed: only the v1
  // constants. It must still load, with batch fields zeroed so
  // PredictBatchedShuffleMs falls back to the v1 model.
  ShuffleCalibration v1_only;
  v1_only.fetch_setup_ms = 0.01;
  v1_only.loopback_bandwidth_mbps = 4000.0;
  auto parsed = ParseCalibrationJson(v1_only.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->batch_setup_ms, 0.0);
  EXPECT_EQ(parsed->batch_entry_ms, 0.0);
  EXPECT_EQ(parsed->batch_bandwidth_mbps, 0.0);
  EXPECT_EQ(parsed->reactor_scaling, 0.0);

  // And its serialized form must not mention the batch keys at all.
  const std::string json = v1_only.ToJson();
  EXPECT_EQ(json.find("batch_setup_ms"), std::string::npos);
  EXPECT_EQ(json.find("reactor_scaling"), std::string::npos);
}

TEST(CalibrationTest, RejectsMissingSchemaAndMissingKeys) {
  EXPECT_FALSE(ParseCalibrationJson("{}").ok());
  EXPECT_FALSE(ParseCalibrationJson(
                   "{\"schema\": \"mrmb-calibration/1\"}")
                   .ok());
  EXPECT_FALSE(ParseCalibrationJson(
                   "{\"schema\": \"mrmb-calibration/1\","
                   " \"fetch_setup_ms\": 0.01}")
                   .ok());
}

TEST(CalibrationTest, RejectsOutOfRangeBatchConstants) {
  const std::string base =
      "{\"schema\": \"mrmb-calibration/1\","
      " \"fetch_setup_ms\": 0.01,"
      " \"loopback_bandwidth_mbps\": 4000,";
  EXPECT_FALSE(
      ParseCalibrationJson(base + " \"batch_setup_ms\": -0.5}").ok());
  EXPECT_FALSE(
      ParseCalibrationJson(base + " \"batch_entry_ms\": -1}").ok());
  EXPECT_FALSE(
      ParseCalibrationJson(base + " \"batch_bandwidth_mbps\": 0}").ok());
  EXPECT_FALSE(
      ParseCalibrationJson(base + " \"reactor_scaling\": -2}").ok());
  // The same document with in-range values loads.
  auto ok = ParseCalibrationJson(base +
                                 " \"batch_setup_ms\": 0.005,"
                                 " \"batch_entry_ms\": 0.001,"
                                 " \"batch_bandwidth_mbps\": 8000,"
                                 " \"reactor_scaling\": 1.5}");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_DOUBLE_EQ(ok->batch_bandwidth_mbps, 8000.0);
}

TEST(CalibrationTest, PredictBatchedShuffleMsMath) {
  ShuffleCalibration cal;
  cal.fetch_setup_ms = 1.0;
  cal.loopback_bandwidth_mbps = 1.0;  // 1 MiB/s: 1 MiB costs 1000 ms
  cal.batch_setup_ms = 10.0;
  cal.batch_entry_ms = 0.5;
  cal.batch_bandwidth_mbps = 2.0;

  // 64 entries under a window of 16 is 4 batch round trips. One stream:
  // 4 * 10 + 64 * 0.5 = 72 ms of setup, plus 1 MiB at 2 MiB/s = 500 ms.
  const double one_stream =
      cal.PredictBatchedShuffleMs(1 << 20, 64, 16, 1);
  EXPECT_NEAR(one_stream, 72.0 + 500.0, 1e-9);
  // Four streams parallelize setup but share the wire.
  const double four_streams =
      cal.PredictBatchedShuffleMs(1 << 20, 64, 16, 4);
  EXPECT_NEAR(four_streams, 72.0 / 4 + 500.0, 1e-9);
  // A partial final window still costs a full round trip: 65 entries in
  // windows of 16 is 5 batches.
  const double partial = cal.PredictBatchedShuffleMs(0, 65, 16, 1);
  EXPECT_NEAR(partial, 5 * 10.0 + 65 * 0.5, 1e-9);

  // Without batch constants the batched predictor defers to the v1 model.
  ShuffleCalibration v1_only;
  v1_only.fetch_setup_ms = 1.0;
  v1_only.loopback_bandwidth_mbps = 1.0;
  EXPECT_DOUBLE_EQ(v1_only.PredictBatchedShuffleMs(1 << 20, 64, 16, 1),
                   v1_only.PredictShuffleMs(1 << 20, 64, 1));
}

TEST(CalibrationTest, BatchedBeatsUnbatchedInLatencyBoundRegime) {
  // The paper's regime: many tiny partitions. With measured-shape
  // constants the batched model must predict a clear win at 4 KB
  // partitions and near-parity at 64 MB ones.
  ShuffleCalibration cal;
  cal.fetch_setup_ms = 0.0125;
  cal.loopback_bandwidth_mbps = 5600.0;
  cal.batch_setup_ms = 0.0069;
  cal.batch_entry_ms = 0.0010;
  cal.batch_bandwidth_mbps = 5600.0;

  const int64_t small_total = 128 * 4096;  // 128 partitions x 4 KB
  const double v1_small = cal.PredictShuffleMs(small_total, 128, 4);
  const double v2_small =
      cal.PredictBatchedShuffleMs(small_total, 128, 32, 4);
  EXPECT_LT(v2_small, v1_small * 0.75);

  const int64_t big_total = 8ll * 64 * 1024 * 1024;  // 8 x 64 MB
  const double v1_big = cal.PredictShuffleMs(big_total, 8, 4);
  const double v2_big = cal.PredictBatchedShuffleMs(big_total, 8, 32, 4);
  EXPECT_NEAR(v2_big, v1_big, v1_big * 0.01);
}

}  // namespace
}  // namespace mrmb
