// tuning_sweep: use the suite the way the paper intends — "to tune and
// optimize these factors, based on cluster and workload characteristics"
// (Sect. 1). For a fixed workload and interconnect, sweeps the framework
// parameters a Hadoop operator controls (task counts, sort buffer, parallel
// copies, slow start) and prints the best setting of each.
//
//   ./tuning_sweep [--shuffle=16GB] [--network=ipoib-qdr] [--slaves=4]

#include <cstdio>
#include <iostream>
#include <vector>

#include "mrmb/benchmark.h"
#include "mrmb/flags.h"

namespace {

using namespace mrmb;

double RunConf(const BenchmarkOptions& options, const JobConf& conf) {
  SimCluster cluster(options.ToClusterSpec());
  SimJobRunner runner(&cluster, conf, options.cost);
  auto result = runner.Run();
  if (!result.ok()) {
    std::cerr << "run failed: " << result.status().ToString() << "\n";
    std::exit(1);
  }
  return result->job_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok() || flags_or->help_requested()) {
    std::cout << "usage: tuning_sweep [--shuffle=16GB] "
                 "[--network=ipoib-qdr] [--slaves=4]\n";
    return flags_or.ok() ? 0 : 2;
  }
  auto shuffle = flags_or->GetBytes("shuffle", 16 * kGB);
  auto network_name = flags_or->GetString("network", "ipoib-qdr");
  auto slaves = flags_or->GetInt("slaves", 4);
  if (!shuffle.ok() || !network_name.ok() || !slaves.ok()) return 2;
  auto network = NetworkProfileByName(*network_name);
  if (!network.ok()) {
    std::cerr << network.status().ToString() << "\n";
    return 2;
  }

  BenchmarkOptions options;
  options.shuffle_bytes = *shuffle;
  options.network = *network;
  options.num_slaves = static_cast<int>(*slaves);

  std::printf("Tuning a %s MR-AVG job on %s (%d slaves)\n\n",
              FormatBytes(*shuffle).c_str(), network->name.c_str(),
              options.num_slaves);

  // 1. Task counts.
  std::printf("--- maps x reduces ---\n");
  double best_time = 1e30;
  std::pair<int, int> best_tasks;
  for (int maps : {8, 16, 32, 64}) {
    for (int reduces : {4, 8, 16}) {
      BenchmarkOptions o = options;
      o.num_maps = maps;
      o.num_reduces = reduces;
      const double seconds = RunConf(o, o.ToJobConf());
      std::printf("  %2dM x %2dR : %8.2f s\n", maps, reduces, seconds);
      if (seconds < best_time) {
        best_time = seconds;
        best_tasks = {maps, reduces};
      }
    }
  }
  std::printf("  -> best: %dM x %dR (%.2f s)\n\n", best_tasks.first,
              best_tasks.second, best_time);

  options.num_maps = best_tasks.first;
  options.num_reduces = best_tasks.second;

  // 2. io.sort.mb.
  std::printf("--- io.sort.mb ---\n");
  int64_t best_sort = 0;
  best_time = 1e30;
  for (int64_t mb : {50, 100, 200, 400, 800}) {
    JobConf conf = options.ToJobConf();
    conf.io_sort_bytes = mb * kMB;
    const double seconds = RunConf(options, conf);
    std::printf("  %4lld MB : %8.2f s\n", static_cast<long long>(mb),
                seconds);
    if (seconds < best_time) {
      best_time = seconds;
      best_sort = mb;
    }
  }
  std::printf("  -> best: io.sort.mb=%lld (%.2f s)\n\n",
              static_cast<long long>(best_sort), best_time);

  // 3. Parallel copies.
  std::printf("--- mapred.reduce.parallel.copies ---\n");
  int best_copies = 0;
  best_time = 1e30;
  for (int copies : {1, 2, 5, 10, 20}) {
    JobConf conf = options.ToJobConf();
    conf.io_sort_bytes = best_sort * kMB;
    conf.parallel_copies = copies;
    const double seconds = RunConf(options, conf);
    std::printf("  %3d : %8.2f s\n", copies, seconds);
    if (seconds < best_time) {
      best_time = seconds;
      best_copies = copies;
    }
  }
  std::printf("  -> best: parallel.copies=%d (%.2f s)\n\n", best_copies,
              best_time);

  // 4. Reduce slow start.
  std::printf("--- reduce slowstart ---\n");
  double best_slowstart = 0;
  best_time = 1e30;
  for (double slowstart : {0.05, 0.25, 0.5, 0.8, 1.0}) {
    JobConf conf = options.ToJobConf();
    conf.io_sort_bytes = best_sort * kMB;
    conf.parallel_copies = best_copies;
    conf.slowstart = slowstart;
    const double seconds = RunConf(options, conf);
    std::printf("  %.2f : %8.2f s\n", slowstart, seconds);
    if (seconds < best_time) {
      best_time = seconds;
      best_slowstart = slowstart;
    }
  }
  std::printf("  -> best: slowstart=%.2f (%.2f s)\n", best_slowstart,
              best_time);
  return 0;
}
