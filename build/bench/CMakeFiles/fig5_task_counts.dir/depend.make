# Empty dependencies file for fig5_task_counts.
# This may be replaced when dependencies are built.
