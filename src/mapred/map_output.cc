#include "mapred/map_output.h"

#include <memory>

#include "common/logging.h"
#include "io/byte_buffer.h"
#include "io/checksum.h"
#include "io/merge.h"

namespace mrmb {

Result<SpillSegment> MergeSegments(
    const std::vector<const SpillSegment*>& segments,
    const RawComparator* comparator, bool verify_checksums) {
  MRMB_CHECK(!segments.empty());
  const size_t num_partitions = segments[0]->partitions.size();
  int64_t total_bytes = 0;
  for (const SpillSegment* segment : segments) {
    MRMB_CHECK_EQ(segment->partitions.size(), num_partitions);
    total_bytes += segment->total_bytes();
  }

  SpillSegment out;
  out.data.reserve(static_cast<size_t>(total_bytes));
  out.partitions.resize(num_partitions);
  BufferWriter writer(&out.data);

  for (size_t p = 0; p < num_partitions; ++p) {
    SpillSegment::PartitionRange& range = out.partitions[p];
    range.offset = static_cast<int64_t>(out.data.size());
    std::vector<std::unique_ptr<RecordStream>> inputs;
    inputs.reserve(segments.size());
    for (const SpillSegment* segment : segments) {
      if (verify_checksums) {
        MRMB_RETURN_IF_ERROR(
            VerifySegmentPartition(*segment, static_cast<int>(p)));
      }
      inputs.push_back(std::make_unique<SegmentReader>(
          segment->PartitionData(static_cast<int>(p))));
    }
    MergeIterator merged(std::move(inputs), comparator);
    while (merged.Valid()) {
      const std::string_view key = merged.key();
      const std::string_view value = merged.value();
      writer.AppendVarint64(static_cast<int64_t>(key.size()));
      writer.AppendVarint64(static_cast<int64_t>(value.size()));
      writer.AppendRaw(key);
      writer.AppendRaw(value);
      range.records += 1;
      merged.Next();
    }
    MRMB_RETURN_IF_ERROR(merged.status());
    range.length = static_cast<int64_t>(out.data.size()) - range.offset;
  }
  SealSegment(&out);
  return out;
}

namespace {

// ReduceContext that frames emitted records into a segment under
// construction.
class CombineContext final : public ReduceContext {
 public:
  CombineContext(const JobConf& conf, int task_id, BufferWriter* writer,
                 SpillSegment::PartitionRange* range)
      : conf_(conf), task_id_(task_id), writer_(writer), range_(range) {}

  void Emit(std::string_view key, std::string_view value) override {
    writer_->AppendVarint64(static_cast<int64_t>(key.size()));
    writer_->AppendVarint64(static_cast<int64_t>(value.size()));
    writer_->AppendRaw(key);
    writer_->AppendRaw(value);
    range_->records += 1;
  }

  const JobConf& conf() const override { return conf_; }
  int task_id() const override { return task_id_; }

 private:
  const JobConf& conf_;
  int task_id_;
  BufferWriter* writer_;
  SpillSegment::PartitionRange* range_;
};

// Adapts a GroupedIterator's values to the ValueIterator interface.
class CombineValues final : public ValueIterator {
 public:
  explicit CombineValues(GroupedIterator* groups) : groups_(groups) {}
  bool Next() override { return groups_->NextValue(); }
  std::string_view value() const override { return groups_->value(); }

 private:
  GroupedIterator* groups_;
};

}  // namespace

SpillSegment CombineSegment(const SpillSegment& segment,
                            const RawComparator* comparator,
                            Reducer* combiner, const JobConf& conf,
                            int task_id) {
  MRMB_CHECK(combiner != nullptr);
  SpillSegment out;
  out.partitions.resize(segment.partitions.size());
  BufferWriter writer(&out.data);
  for (size_t p = 0; p < segment.partitions.size(); ++p) {
    SpillSegment::PartitionRange& range = out.partitions[p];
    range.offset = static_cast<int64_t>(out.data.size());
    SegmentReader reader(segment.PartitionData(static_cast<int>(p)));
    GroupedIterator groups(&reader, comparator);
    CombineContext context(conf, task_id, &writer, &range);
    while (groups.NextGroup()) {
      CombineValues values(&groups);
      combiner->Reduce(groups.group_key(), &values, &context);
    }
    range.length = static_cast<int64_t>(out.data.size()) - range.offset;
  }
  SealSegment(&out);
  return out;
}

}  // namespace mrmb
