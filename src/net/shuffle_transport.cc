#include "net/shuffle_transport.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/sendfile.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/logging.h"

namespace mrmb {

namespace {

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " +
                         std::strerror(errno));
}

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Reads exactly `len` bytes from a blocking socket. Returns false on EOF
// or error (torn read / connection reset).
bool RecvAll(int fd, char* buf, size_t len) {
  size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, buf + got, len - got, 0);
    if (n <= 0) {
      if (n < 0 && (errno == EINTR)) continue;
      return false;
    }
    got += static_cast<size_t>(n);
  }
  return true;
}

bool SendAll(int fd, const char* buf, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, buf + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

// ---- Server ---------------------------------------------------------------

struct ShuffleTransportServer::Connection {
  int fd = -1;
  std::string in;  // buffered request bytes
  // Pending response: `head` always carries the encoded header (plus the
  // whole body for truncated-fault responses); the body is either a view
  // into an anchored segment or a byte range of an extent file.
  std::string head;
  size_t head_sent = 0;
  std::string_view body;  // RAM body (valid while anchors live)
  size_t body_sent = 0;
  std::shared_ptr<const SpillSegment> segment_anchor;
  std::shared_ptr<const StoredSpill> disk_anchor;
  int file_fd = -1;        // not owned; dup held by the registration
  off_t file_off = 0;
  int64_t file_remaining = 0;
  bool writing = false;
  bool close_after_write = false;
};

Result<std::unique_ptr<ShuffleTransportServer>> ShuffleTransportServer::Start(
    const Options& options) {
  std::unique_ptr<ShuffleTransportServer> server(new ShuffleTransportServer());
  server->options_ = options;

  server->listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (server->listen_fd_ < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(server->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
               sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(server->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Errno("bind");
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(server->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) != 0) {
    return Errno("getsockname");
  }
  server->port_ = ntohs(addr.sin_port);
  if (::listen(server->listen_fd_, 128) != 0) return Errno("listen");
  if (!SetNonBlocking(server->listen_fd_)) return Errno("fcntl");

  server->epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (server->epoll_fd_ < 0) return Errno("epoll_create1");
  server->wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (server->wake_fd_ < 0) return Errno("eventfd");

  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.fd = server->listen_fd_;
  if (::epoll_ctl(server->epoll_fd_, EPOLL_CTL_ADD, server->listen_fd_,
                  &ev) != 0) {
    return Errno("epoll_ctl(listen)");
  }
  ev.data.fd = server->wake_fd_;
  if (::epoll_ctl(server->epoll_fd_, EPOLL_CTL_ADD, server->wake_fd_, &ev) !=
      0) {
    return Errno("epoll_ctl(wake)");
  }

  server->thread_ = std::thread([raw = server.get()] { raw->Run(); });
  return server;
}

ShuffleTransportServer::~ShuffleTransportServer() {
  stopping_.store(true);
  if (wake_fd_ >= 0) {
    const uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
  if (thread_.joinable()) thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [fd, conn] : conns_) ::close(fd);
    conns_.clear();
    for (auto& [map, reg] : outputs_) {
      if (reg.fd >= 0) ::close(reg.fd);
    }
    outputs_.clear();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
}

void ShuffleTransportServer::Publish(
    int map, uint32_t generation, std::shared_ptr<const SpillSegment> segment,
    std::shared_ptr<const StoredSpill> disk) {
  int extent_fd = -1;
  if (disk != nullptr) {
    // The handle's own fd is private; the server keeps its own descriptor
    // for sendfile so reads never race handle teardown.
    extent_fd = ::open(disk->path().c_str(), O_RDONLY | O_CLOEXEC);
  }
  std::lock_guard<std::mutex> lock(mu_);
  Registration& reg = outputs_[map];
  if (reg.fd >= 0) ::close(reg.fd);
  reg.generation = generation;
  reg.segment = std::move(segment);
  reg.disk = std::move(disk);
  reg.fd = extent_fd;
}

ShuffleServerStats ShuffleTransportServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ShuffleTransportServer::Run() {
  epoll_event events[64];
  while (!stopping_.load()) {
    const int n = ::epoll_wait(epoll_fd_, events, 64, 500);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drain = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(wake_fd_, &drain, sizeof(drain));
        continue;
      }
      if (fd == listen_fd_) {
        while (true) {
          const int client = ::accept(listen_fd_, nullptr, nullptr);
          if (client < 0) break;
          SetNonBlocking(client);
          SetNoDelay(client);
          auto conn = std::make_unique<Connection>();
          conn->fd = client;
          epoll_event ev;
          std::memset(&ev, 0, sizeof(ev));
          ev.events = EPOLLIN;
          ev.data.fd = client;
          if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, client, &ev) != 0) {
            ::close(client);
            continue;
          }
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.accepted_connections;
          conns_[client] = std::move(conn);
        }
        continue;
      }
      Connection* conn = nullptr;
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = conns_.find(fd);
        if (it != conns_.end()) conn = it->second.get();
      }
      if (conn == nullptr) continue;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        CloseConnection(conn);
        continue;
      }
      if (events[i].events & EPOLLOUT) HandleWritable(conn);
      if (events[i].events & EPOLLIN) HandleReadable(conn);
    }
  }
}

void ShuffleTransportServer::CloseConnection(Connection* conn) {
  const int fd = conn->fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  std::lock_guard<std::mutex> lock(mu_);
  conns_.erase(fd);
}

void ShuffleTransportServer::HandleReadable(Connection* conn) {
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->in.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {  // peer closed
      CloseConnection(conn);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConnection(conn);
    return;
  }
  // One request in flight per connection: the client is strictly
  // request/response, so further buffered bytes wait for the reply drain.
  while (!conn->writing && conn->in.size() >= kShuffleRequestSize) {
    ShuffleFetchRequest request;
    const Status status = DecodeShuffleRequest(
        std::string_view(conn->in).substr(0, kShuffleRequestSize), &request);
    conn->in.erase(0, kShuffleRequestSize);
    if (!status.ok()) {  // protocol garbage: drop the connection
      CloseConnection(conn);
      return;
    }
    if (!BuildResponse(conn, request)) return;  // dropped by fault injection
    if (!FlushOutput(conn)) return;
  }
}

void ShuffleTransportServer::HandleWritable(Connection* conn) {
  if (!FlushOutput(conn)) return;
  // The reply drained; any pipelined request buffered meanwhile runs now.
  if (!conn->writing && !conn->in.empty()) HandleReadable(conn);
}

// Returns false when the connection was torn down (drop_conn injection);
// the Connection object is destroyed and must not be touched again.
bool ShuffleTransportServer::BuildResponse(
    Connection* conn, const ShuffleFetchRequest& request) {
  ShuffleFetchResponseHeader header;
  TransportFault fault = TransportFault::kNone;
  std::shared_ptr<const SpillSegment> segment;
  std::shared_ptr<const StoredSpill> disk;
  int file_fd = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const int64_t seq = fetch_seq_[request.map]++;
    if (options_.fault_hook) {
      fault = options_.fault_hook(request.map, seq);
      if (fault != TransportFault::kNone) ++stats_.faults_injected;
    }
    auto it = outputs_.find(request.map);
    if (request.job_digest != options_.job_digest) {
      header.status = FetchStatus::kError;
    } else if (it == outputs_.end()) {
      header.status = FetchStatus::kNotFound;
      ++stats_.not_found;
    } else if (it->second.generation != request.generation) {
      header.status = FetchStatus::kStaleGeneration;
      header.generation = it->second.generation;
      ++stats_.stale_refused;
    } else {
      segment = it->second.segment;
      disk = it->second.disk;
      file_fd = it->second.fd;
      header.generation = it->second.generation;
    }
  }
  if (fault == TransportFault::kDropConn) {
    CloseConnection(conn);
    return false;
  }

  conn->head.clear();
  conn->head_sent = 0;
  conn->body = {};
  conn->body_sent = 0;
  conn->segment_anchor.reset();
  conn->disk_anchor.reset();
  conn->file_fd = -1;
  conn->file_off = 0;
  conn->file_remaining = 0;
  conn->close_after_write = false;

  if (header.status != FetchStatus::kOk) {
    EncodeShuffleResponseHeader(header, &conn->head);
    conn->writing = true;
    return true;
  }

  const int r = request.partition;
  if (disk != nullptr && file_fd >= 0) {
    // Durable extent: ship the partition's contiguous frame byte range —
    // [first frame's length prefix, end of last frame) — untouched.
    const auto& ranges = disk->partitions();
    if (r < 0 || static_cast<size_t>(r) >= ranges.size()) {
      header.status = FetchStatus::kError;
      EncodeShuffleResponseHeader(header, &conn->head);
      conn->writing = true;
      return true;
    }
    const SpillSegment::PartitionRange& range = ranges[r];
    int64_t begin = -1, end = -1;
    for (const StoredSpill::BlockRef& block : disk->blocks()) {
      if (block.partition != r) continue;
      const int64_t prefix_at = block.file_offset - 4;
      if (begin < 0 || prefix_at < begin) begin = prefix_at;
      end = std::max(end, block.file_offset + block.frame_len);
    }
    header.raw_len = range.raw_bytes();
    header.partition_crc = range.crc;
    header.records = range.records;
    header.encoding = FetchEncoding::kFrameStream;
    header.body_len = begin < 0 ? 0 : end - begin;
    EncodeShuffleResponseHeader(header, &conn->head);
    if (fault == TransportFault::kTruncFrame && header.body_len > 0) {
      // Materialize half the body after the header, then hang up: the
      // client sees a short read mid-frame-stream.
      const int64_t trunc = std::max<int64_t>(1, header.body_len / 2);
      std::string part(static_cast<size_t>(trunc), '\0');
      const ssize_t got = ::pread(file_fd, part.data(), part.size(),
                                  static_cast<off_t>(begin));
      part.resize(got > 0 ? static_cast<size_t>(got) : 0);
      conn->head += part;
      conn->close_after_write = true;
    } else if (header.body_len > 0) {
      conn->disk_anchor = std::move(disk);
      conn->file_fd = file_fd;
      conn->file_off = static_cast<off_t>(begin);
      conn->file_remaining = header.body_len;
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.file_serves;
  } else if (segment != nullptr) {
    const auto& ranges = segment->partitions;
    if (r < 0 || static_cast<size_t>(r) >= ranges.size()) {
      header.status = FetchStatus::kError;
      EncodeShuffleResponseHeader(header, &conn->head);
      conn->writing = true;
      return true;
    }
    const SpillSegment::PartitionRange& range = ranges[r];
    const std::string_view body = segment->PartitionData(r);
    header.raw_len = range.raw_bytes();
    header.partition_crc = range.crc;
    header.records = range.records;
    header.encoding = FetchEncoding::kPartitionBytes;
    header.body_len = static_cast<int64_t>(body.size());
    EncodeShuffleResponseHeader(header, &conn->head);
    if (fault == TransportFault::kTruncFrame && !body.empty()) {
      conn->head.append(body.substr(0, std::max<size_t>(1, body.size() / 2)));
      conn->close_after_write = true;
    } else {
      conn->segment_anchor = std::move(segment);
      conn->body = conn->segment_anchor->PartitionData(r);
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.ram_serves;
  } else {
    header.status = FetchStatus::kError;
    EncodeShuffleResponseHeader(header, &conn->head);
  }
  conn->writing = true;
  return true;
}

// Drains as much pending output as the socket accepts. Returns false when
// the connection was torn down (error or deliberate post-truncation close).
bool ShuffleTransportServer::FlushOutput(Connection* conn) {
  int64_t written_now = 0;
  bool blocked = false;
  while (true) {
    if (conn->head_sent < conn->head.size()) {
      // Coalesce the header with a RAM body in one writev.
      iovec iov[2];
      iov[0].iov_base =
          const_cast<char*>(conn->head.data()) + conn->head_sent;
      iov[0].iov_len = conn->head.size() - conn->head_sent;
      int iovcnt = 1;
      if (conn->body_sent < conn->body.size()) {
        iov[1].iov_base =
            const_cast<char*>(conn->body.data()) + conn->body_sent;
        iov[1].iov_len = conn->body.size() - conn->body_sent;
        iovcnt = 2;
      }
      const ssize_t n = ::writev(conn->fd, iov, iovcnt);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          blocked = true;
          break;
        }
        CloseConnection(conn);
        return false;
      }
      written_now += n;
      size_t left = static_cast<size_t>(n);
      const size_t head_room = conn->head.size() - conn->head_sent;
      const size_t head_take = std::min(left, head_room);
      conn->head_sent += head_take;
      conn->body_sent += left - head_take;
      continue;
    }
    if (conn->body_sent < conn->body.size()) {
      const ssize_t n =
          ::send(conn->fd, conn->body.data() + conn->body_sent,
                 conn->body.size() - conn->body_sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          blocked = true;
          break;
        }
        CloseConnection(conn);
        return false;
      }
      written_now += n;
      conn->body_sent += static_cast<size_t>(n);
      continue;
    }
    if (conn->file_remaining > 0) {
      ssize_t n = ::sendfile(conn->fd, conn->file_fd, &conn->file_off,
                             static_cast<size_t>(std::min<int64_t>(
                                 conn->file_remaining, 1 << 20)));
      if (n < 0 && (errno == EINVAL || errno == ENOSYS)) {
        // Filesystem without sendfile support: pread + send the same range.
        char buf[64 << 10];
        const size_t want = static_cast<size_t>(
            std::min<int64_t>(conn->file_remaining,
                              static_cast<int64_t>(sizeof(buf))));
        const ssize_t got = ::pread(conn->file_fd, buf, want, conn->file_off);
        if (got <= 0) {
          CloseConnection(conn);
          return false;
        }
        n = ::send(conn->fd, buf, static_cast<size_t>(got), MSG_NOSIGNAL);
        if (n > 0) conn->file_off += n;
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          blocked = true;
          break;
        }
        CloseConnection(conn);
        return false;
      }
      written_now += n;
      conn->file_remaining -= n;
      continue;
    }
    break;  // everything drained
  }

  const bool done = conn->head_sent == conn->head.size() &&
                    conn->body_sent == conn->body.size() &&
                    conn->file_remaining == 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.bytes_sent += written_now;
    if (done && conn->writing) ++stats_.fetches_served;
  }
  if (done) {
    conn->writing = false;
    conn->segment_anchor.reset();
    conn->disk_anchor.reset();
    conn->body = {};
    conn->head.clear();
    conn->head_sent = 0;
    conn->body_sent = 0;
    if (conn->close_after_write) {
      CloseConnection(conn);
      return false;
    }
  }
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = blocked ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
  ev.data.fd = conn->fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
  return true;
}

// ---- Client ---------------------------------------------------------------

ShuffleTransportClient::ShuffleTransportClient(const Options& options)
    : options_(options) {}

ShuffleTransportClient::~ShuffleTransportClient() {
  std::lock_guard<std::mutex> lock(mu_);
  for (int fd : idle_fds_) ::close(fd);
  idle_fds_.clear();
}

int ShuffleTransportClient::AcquireConnection() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] {
    return !idle_fds_.empty() || open_streams_ < options_.parallel_streams;
  });
  if (!idle_fds_.empty()) {
    const int fd = idle_fds_.back();
    idle_fds_.pop_back();
    return fd;
  }
  ++open_streams_;
  ++stats_.connections;
  if (broken_streams_ > 0) {
    // This connect replaces one that died mid-fetch.
    --broken_streams_;
    ++stats_.reconnects;
  }
  lock.unlock();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::lock_guard<std::mutex> relock(mu_);
    --open_streams_;
    cv_.notify_one();
    return -1;
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    std::lock_guard<std::mutex> relock(mu_);
    --open_streams_;
    cv_.notify_one();
    return -1;
  }
  SetNoDelay(fd);
  return fd;
}

void ShuffleTransportClient::ReleaseConnection(int fd, bool healthy) {
  std::lock_guard<std::mutex> lock(mu_);
  if (healthy) {
    idle_fds_.push_back(fd);
  } else {
    ::close(fd);
    --open_streams_;
    ++broken_streams_;
  }
  cv_.notify_one();
}

void ShuffleTransportClient::ReserveInflight(int64_t bytes) {
  const int64_t want = std::min(bytes, options_.max_inflight_bytes);
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] {
    return inflight_bytes_ == 0 ||
           inflight_bytes_ + want <= options_.max_inflight_bytes;
  });
  inflight_bytes_ += want;
}

void ShuffleTransportClient::ReleaseInflight(int64_t bytes) {
  const int64_t taken = std::min(bytes, options_.max_inflight_bytes);
  std::lock_guard<std::mutex> lock(mu_);
  inflight_bytes_ -= taken;
  cv_.notify_all();
}

Result<ShuffleFetchResult> ShuffleTransportClient::Fetch(int map,
                                                         int partition,
                                                         uint32_t generation) {
  if (options_.delay_ms_hook) {
    int64_t seq;
    {
      std::lock_guard<std::mutex> lock(mu_);
      seq = fetch_seq_[map]++;
    }
    const int64_t delay = options_.delay_ms_hook(map, seq);
    if (delay > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
  }
  const double start_ms = NowMs();
  const int fd = AcquireConnection();
  if (fd < 0) return Status::IOError("shuffle fetch: connect failed");

  ShuffleFetchRequest request;
  request.job_digest = options_.job_digest;
  request.map = map;
  request.partition = partition;
  request.generation = generation;
  std::string wire;
  EncodeShuffleRequest(request, &wire);
  if (!SendAll(fd, wire.data(), wire.size())) {
    ReleaseConnection(fd, false);
    return Status::IOError("shuffle fetch: send failed");
  }

  char head[kShuffleResponseHeaderSize];
  if (!RecvAll(fd, head, sizeof(head))) {
    ReleaseConnection(fd, false);
    return Status::IOError("shuffle fetch: torn response header");
  }
  ShuffleFetchResponseHeader header;
  const Status decoded = DecodeShuffleResponseHeader(
      std::string_view(head, sizeof(head)), &header);
  if (!decoded.ok()) {
    ReleaseConnection(fd, false);
    return Status::IOError("shuffle fetch: bad response header: " +
                           decoded.message());
  }

  ShuffleFetchResult result;
  result.status = header.status;
  result.generation = header.generation;
  result.raw_len = header.raw_len;
  result.partition_crc = header.partition_crc;
  result.records = header.records;
  result.encoding = header.encoding;
  if (header.body_len > 0) {
    ReserveInflight(header.body_len);
    result.body.resize(static_cast<size_t>(header.body_len));
    const bool ok = RecvAll(fd, result.body.data(), result.body.size());
    ReleaseInflight(header.body_len);
    if (!ok) {
      ReleaseConnection(fd, false);
      return Status::IOError("shuffle fetch: short body (" +
                             std::to_string(header.body_len) +
                             " bytes expected)");
    }
  }
  ReleaseConnection(fd, true);

  result.wire_bytes =
      static_cast<int64_t>(kShuffleResponseHeaderSize) + header.body_len;
  result.latency_ms = NowMs() - start_ms;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.fetches;
    stats_.wire_bytes += result.wire_bytes;
    latencies_ms_.push_back(result.latency_ms);
  }
  return result;
}

ShuffleClientStats ShuffleTransportClient::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ShuffleClientStats out = stats_;
  if (!latencies_ms_.empty()) {
    std::vector<double> sorted = latencies_ms_;
    std::sort(sorted.begin(), sorted.end());
    double sum = 0;
    for (double v : sorted) sum += v;
    out.fetch_mean_ms = sum / static_cast<double>(sorted.size());
    const size_t p99 =
        std::min(sorted.size() - 1,
                 static_cast<size_t>(0.99 * static_cast<double>(sorted.size())));
    out.fetch_p99_ms = sorted[p99];
  }
  return out;
}

}  // namespace mrmb
