// Raw comparators: order serialized records without deserializing.
//
// The map-side sort and the reduce-side merge compare keys in their wire
// form, exactly like Hadoop's WritableComparator.compareBytes path. Each
// comparator's order is consistent with comparing the deserialized values
// (a property the tests verify exhaustively).

#ifndef MRMB_IO_COMPARATOR_H_
#define MRMB_IO_COMPARATOR_H_

#include <string_view>

#include "io/writable.h"

namespace mrmb {

class RawComparator {
 public:
  virtual ~RawComparator() = default;

  // Compares two serialized values of this comparator's type. Each view
  // must hold exactly one serialized value. Returns <0, 0, >0.
  virtual int Compare(std::string_view a, std::string_view b) const = 0;
  virtual DataType type() const = 0;
};

// Returns the process-lifetime comparator for `type`. Never null.
const RawComparator* ComparatorFor(DataType type);

}  // namespace mrmb

#endif  // MRMB_IO_COMPARATOR_H_
