// Paper-shape regression tests: assert the qualitative results of
// Shankar et al. (BPOE 2014) hold in the simulation at reduced scale.
// These pin the calibration so refactoring can't silently break the
// reproduced figures (see EXPERIMENTS.md for the full-scale numbers).

#include <gtest/gtest.h>

#include "mrmb/benchmark.h"

namespace mrmb {
namespace {

double JobSeconds(BenchmarkOptions options) {
  auto result = RunMicroBenchmark(options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result->job.job_seconds;
}

BenchmarkOptions PaperClusterA() {
  BenchmarkOptions options;
  options.cluster = ClusterKind::kClusterA;
  options.num_slaves = 4;
  options.num_maps = 16;
  options.num_reduces = 8;
  options.key_size = 512;
  options.value_size = 512;
  options.shuffle_bytes = 8LL * 1024 * 1024 * 1024;
  return options;
}

double Improvement(double base, double other) {
  return (base - other) / base * 100.0;
}

TEST(PaperShapeTest, Fig2NetworkOrderingAndMagnitude) {
  // Fig. 2(a): 10 GigE ~17% and IPoIB QDR up to ~24% over 1 GigE.
  BenchmarkOptions options = PaperClusterA();
  options.network = OneGigE();
  const double t_1g = JobSeconds(options);
  options.network = TenGigE();
  const double t_10g = JobSeconds(options);
  options.network = IpoibQdr();
  const double t_ib = JobSeconds(options);

  const double improvement_10g = Improvement(t_1g, t_10g);
  const double improvement_ib = Improvement(t_1g, t_ib);
  EXPECT_GT(improvement_10g, 10.0);
  EXPECT_LT(improvement_10g, 30.0);
  EXPECT_GT(improvement_ib, 15.0);
  EXPECT_LT(improvement_ib, 35.0);
  EXPECT_GT(improvement_ib, improvement_10g);
}

TEST(PaperShapeTest, Fig2SkewDoublesJobTime) {
  // "the skewed data distribution seems to double the job execution time
  //  ... irrespective of the underlying network interconnect."
  for (const NetworkProfile& network : {OneGigE(), IpoibQdr()}) {
    BenchmarkOptions options = PaperClusterA();
    options.network = network;
    options.pattern = DistributionPattern::kAverage;
    const double t_avg = JobSeconds(options);
    options.pattern = DistributionPattern::kSkewed;
    const double t_skew = JobSeconds(options);
    const double ratio = t_skew / t_avg;
    EXPECT_GT(ratio, 1.6) << network.name;
    EXPECT_LT(ratio, 2.6) << network.name;
  }
}

TEST(PaperShapeTest, Fig2RandCloseToAvg) {
  // MR-RAND "is relatively close to an even distribution".
  BenchmarkOptions options = PaperClusterA();
  options.network = TenGigE();
  options.pattern = DistributionPattern::kAverage;
  const double t_avg = JobSeconds(options);
  options.pattern = DistributionPattern::kRandom;
  const double t_rand = JobSeconds(options);
  EXPECT_NEAR(t_rand / t_avg, 1.0, 0.1);
}

TEST(PaperShapeTest, Fig3YarnSkewPenaltyGrowsWithReducers) {
  // Fig. 3: with 32 maps / 16 reduces the skew penalty exceeds the
  // 16M/8R case (">3X" vs "2X" in the paper).
  BenchmarkOptions small = PaperClusterA();
  small.network = IpoibQdr();
  small.scheduler = SchedulerKind::kYarn;
  BenchmarkOptions large = small;
  large.num_slaves = 8;
  large.num_maps = 32;
  large.num_reduces = 16;

  auto ratio_of = [&](BenchmarkOptions options) {
    options.pattern = DistributionPattern::kAverage;
    const double t_avg = JobSeconds(options);
    options.pattern = DistributionPattern::kSkewed;
    return JobSeconds(options) / t_avg;
  };
  const double small_ratio = ratio_of(small);
  const double large_ratio = ratio_of(large);
  EXPECT_GT(large_ratio, small_ratio);
  EXPECT_GT(large_ratio, 2.0);
}

TEST(PaperShapeTest, Fig4SmallerPairsSlower) {
  // Fig. 4: for a fixed shuffle size, smaller key/value pairs mean many
  // more records and much higher job time.
  BenchmarkOptions options = PaperClusterA();
  options.network = IpoibQdr();
  options.shuffle_bytes = 4LL * 1024 * 1024 * 1024;
  options.key_size = 50;
  options.value_size = 50;
  const double t_100b = JobSeconds(options);
  options.key_size = 512;
  options.value_size = 512;
  const double t_1kb = JobSeconds(options);
  options.key_size = 5 * 1024;
  options.value_size = 5 * 1024;
  const double t_10kb = JobSeconds(options);
  EXPECT_GT(t_100b, 1.5 * t_1kb);
  EXPECT_GT(t_1kb, t_10kb);
  // Paper: 16 GB drops ~7.5x from 100 B to 10 KB pairs; at our reduced
  // size expect at least 2x.
  EXPECT_GT(t_100b / t_10kb, 2.0);
}

TEST(PaperShapeTest, Fig5MoreTasksFasterOnFastNetworks) {
  // Fig. 5: 8M-4R beats 4M-2R, and IPoIB gains more from the added
  // concurrency than 10 GigE.
  BenchmarkOptions options = PaperClusterA();
  options.shuffle_bytes = 8LL * 1024 * 1024 * 1024;

  auto time_with = [&](const NetworkProfile& network, int maps,
                       int reduces) {
    BenchmarkOptions o = options;
    o.network = network;
    o.num_maps = maps;
    o.num_reduces = reduces;
    return JobSeconds(o);
  };
  const double ten_4m = time_with(TenGigE(), 4, 2);
  const double ten_8m = time_with(TenGigE(), 8, 4);
  const double ib_4m = time_with(IpoibQdr(), 4, 2);
  const double ib_8m = time_with(IpoibQdr(), 8, 4);
  EXPECT_LT(ten_8m, ten_4m);
  EXPECT_LT(ib_8m, ib_4m);
  EXPECT_GT(Improvement(ib_4m, ib_8m) + 1.0,
            Improvement(ten_4m, ten_8m));
  // IPoIB outperforms 10 GigE in both configurations.
  EXPECT_LT(ib_4m, ten_4m);
  EXPECT_LT(ib_8m, ten_8m);
}

TEST(PaperShapeTest, Fig6DataTypesBenefitSimilarly) {
  // Fig. 6: high-speed interconnects give similar improvement for
  // BytesWritable and Text.
  BenchmarkOptions options = PaperClusterA();
  auto improvement_for = [&](DataType type) {
    BenchmarkOptions o = options;
    o.data_type = type;
    o.pattern = DistributionPattern::kRandom;
    o.network = OneGigE();
    const double t_1g = JobSeconds(o);
    o.network = IpoibQdr();
    return Improvement(t_1g, JobSeconds(o));
  };
  const double bytes_improvement = improvement_for(DataType::kBytesWritable);
  const double text_improvement = improvement_for(DataType::kText);
  EXPECT_GT(bytes_improvement, 10.0);
  EXPECT_GT(text_improvement, 10.0);
  EXPECT_NEAR(bytes_improvement, text_improvement, 8.0);
}

TEST(PaperShapeTest, Fig7ResourcePeaksOrdered) {
  // Fig. 7(b): RX peaks ~110 / ~520 / ~950 MB/s for 1 GigE / 10 GigE /
  // IPoIB QDR. Assert ordering and coarse magnitude.
  auto peak_for = [&](const NetworkProfile& network) {
    BenchmarkOptions options = PaperClusterA();
    options.network = network;
    options.collect_resource_stats = true;
    auto result = RunMicroBenchmark(options);
    EXPECT_TRUE(result.ok());
    return result->peak_rx_MBps;
  };
  const double peak_1g = peak_for(OneGigE());
  const double peak_10g = peak_for(TenGigE());
  const double peak_ib = peak_for(IpoibQdr());
  EXPECT_GT(peak_1g, 80.0);
  EXPECT_LT(peak_1g, 130.0);
  EXPECT_GT(peak_10g, 250.0);
  EXPECT_LT(peak_10g, 600.0);
  EXPECT_GT(peak_ib, 800.0);
  EXPECT_LT(peak_ib, 1300.0);
}

TEST(PaperShapeTest, Fig8RdmaBeatsIpoibFdr) {
  // Fig. 8: MRoIB improves 28-30% over IPoIB (56 Gbps) on 8 slaves, and
  // ~20%+ on 16 slaves. Accept >= 12% at reduced scale.
  for (int slaves : {8, 16}) {
    BenchmarkOptions options;
    options.cluster = ClusterKind::kClusterB;
    options.num_slaves = slaves;
    options.num_maps = 32;
    options.num_reduces = 16;
    options.shuffle_bytes = 16LL * 1024 * 1024 * 1024;
    options.network = IpoibFdr();
    const double t_ipoib = JobSeconds(options);
    options.network = RdmaFdr();
    const double t_rdma = JobSeconds(options);
    const double improvement = Improvement(t_ipoib, t_rdma);
    EXPECT_GT(improvement, 12.0) << slaves << " slaves";
    EXPECT_LT(improvement, 45.0) << slaves << " slaves";
  }
}

TEST(PaperShapeTest, ImprovementGrowsOrHoldsWithShuffleSize) {
  // "IPoIB (32 Gbps) provides better improvement with increased shuffle
  // data sizes" — assert it does not collapse.
  BenchmarkOptions options = PaperClusterA();
  auto improvement_at = [&](int64_t bytes) {
    BenchmarkOptions o = options;
    o.shuffle_bytes = bytes;
    o.network = OneGigE();
    const double t_1g = JobSeconds(o);
    o.network = IpoibQdr();
    return Improvement(t_1g, JobSeconds(o));
  };
  const double at_4gb = improvement_at(4LL << 30);
  const double at_16gb = improvement_at(16LL << 30);
  EXPECT_GT(at_16gb, at_4gb - 8.0);
  EXPECT_GT(at_16gb, 15.0);
}

}  // namespace
}  // namespace mrmb
