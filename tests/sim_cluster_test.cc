#include "cluster/sim_cluster.h"

#include <gtest/gtest.h>

#include "cluster/resource_monitor.h"
#include "net/network_profile.h"

namespace mrmb {
namespace {

ClusterSpec SmallSpec(int slaves = 2) {
  ClusterSpec spec = ClusterA(OneGigE(), slaves);
  spec.node.disk_seek = 0;  // exact disk timing in tests
  return spec;
}

TEST(SimClusterTest, SingleCpuTaskRunsAtCoreSpeed) {
  SimCluster cluster(SmallSpec());
  SimTime done = -1;
  cluster.RunCpu(0, 2.0, [&](SimTime t) { done = t; });
  cluster.sim()->Run();
  EXPECT_NEAR(ToSeconds(done), 2.0, 1e-6);
}

TEST(SimClusterTest, FasterCoresFinishSooner) {
  ClusterSpec spec = SmallSpec();
  spec.node.core_speed = 2.0;
  SimCluster cluster(spec);
  SimTime done = -1;
  cluster.RunCpu(0, 2.0, [&](SimTime t) { done = t; });
  cluster.sim()->Run();
  EXPECT_NEAR(ToSeconds(done), 1.0, 1e-6);
}

TEST(SimClusterTest, TasksWithinCoreCountDontContend) {
  SimCluster cluster(SmallSpec());  // 8 cores
  int completed = 0;
  SimTime last = 0;
  for (int i = 0; i < 8; ++i) {
    cluster.RunCpu(0, 1.0, [&](SimTime t) {
      ++completed;
      last = t;
    });
  }
  cluster.sim()->Run();
  EXPECT_EQ(completed, 8);
  EXPECT_NEAR(ToSeconds(last), 1.0, 1e-6);
}

TEST(SimClusterTest, OversubscribedCpuStretchesWallTime) {
  SimCluster cluster(SmallSpec());  // 8 cores
  SimTime last = 0;
  for (int i = 0; i < 16; ++i) {
    cluster.RunCpu(0, 1.0, [&](SimTime t) { last = t; });
  }
  cluster.sim()->Run();
  // 16 core-seconds of work on 8 cores: 2 seconds.
  EXPECT_NEAR(ToSeconds(last), 2.0, 1e-6);
}

TEST(SimClusterTest, CpuIsPerNode) {
  SimCluster cluster(SmallSpec());
  SimTime done_0 = -1;
  SimTime done_1 = -1;
  for (int i = 0; i < 16; ++i) {
    cluster.RunCpu(0, 1.0, [&](SimTime t) { done_0 = t; });
  }
  cluster.RunCpu(1, 1.0, [&](SimTime t) { done_1 = t; });
  cluster.sim()->Run();
  EXPECT_NEAR(ToSeconds(done_0), 2.0, 1e-6);  // node 0 oversubscribed
  EXPECT_NEAR(ToSeconds(done_1), 1.0, 1e-6);  // node 1 idle
}

TEST(SimClusterTest, DiskIoTimeMatchesBandwidth) {
  ClusterSpec spec = SmallSpec();
  spec.node.disk_bandwidth_Bps = 100.0 * 1024 * 1024;
  SimCluster cluster(spec);
  SimTime done = -1;
  cluster.DiskIo(0, 200 * 1024 * 1024, [&](SimTime t) { done = t; });
  cluster.sim()->Run();
  EXPECT_NEAR(ToSeconds(done), 2.0, 1e-6);
}

TEST(SimClusterTest, DiskSeekAddsFixedCost) {
  ClusterSpec spec = SmallSpec();
  spec.node.disk_seek = 10 * kMillisecond;
  spec.node.disk_bandwidth_Bps = 100.0 * 1024 * 1024;
  SimCluster cluster(spec);
  SimTime done = -1;
  cluster.DiskIo(0, 100 * 1024 * 1024, [&](SimTime t) { done = t; });
  cluster.sim()->Run();
  EXPECT_NEAR(ToSeconds(done), 1.010, 1e-6);
}

TEST(SimClusterTest, ConcurrentDiskStreamsShareBandwidth) {
  ClusterSpec spec = SmallSpec();
  spec.node.disk_bandwidth_Bps = 100.0 * 1024 * 1024;
  SimCluster cluster(spec);
  SimTime last = 0;
  cluster.DiskIo(0, 100 * 1024 * 1024, [&](SimTime t) { last = t; });
  cluster.DiskIo(0, 100 * 1024 * 1024, [&](SimTime t) { last = t; });
  cluster.sim()->Run();
  EXPECT_NEAR(ToSeconds(last), 2.0, 1e-6);
}

TEST(SimClusterTest, CpuBusyAccounting) {
  SimCluster cluster(SmallSpec());
  cluster.RunCpu(0, 1.5, [](SimTime) {});
  cluster.RunCpu(0, 0.5, [](SimTime) {});
  cluster.RunCpu(1, 2.0, [](SimTime) {});
  cluster.sim()->Run();
  EXPECT_NEAR(cluster.CpuBusySeconds(0), 2.0, 1e-6);
  EXPECT_NEAR(cluster.CpuBusySeconds(1), 2.0, 1e-6);
}

TEST(SimClusterTest, TransferForwardsToFabric) {
  SimCluster cluster(SmallSpec());
  SimTime done = -1;
  cluster.Transfer(0, 1, 1024 * 1024, [&](SimTime t) { done = t; });
  cluster.sim()->Run();
  EXPECT_GT(done, 0);
  EXPECT_NEAR(cluster.RxBytes(1), 1024.0 * 1024.0, 1.0);
}

TEST(ResourceMonitorTest, SamplesAtInterval) {
  SimCluster cluster(SmallSpec());
  ResourceMonitor monitor(&cluster, kSecond);
  monitor.Start();
  cluster.RunCpu(0, 4.0, [&](SimTime) { monitor.Stop(); });
  cluster.sim()->Run();
  // 4 seconds of work: 4 samples (the Stop happens exactly at t=4 which is
  // also a sampling instant; either 3 or 4 is acceptable depending on event
  // order, so assert a range).
  EXPECT_GE(monitor.samples(0).size(), 3u);
  EXPECT_LE(monitor.samples(0).size(), 4u);
}

TEST(ResourceMonitorTest, CpuUtilizationReflectsLoad) {
  SimCluster cluster(SmallSpec());  // 8 cores
  ResourceMonitor monitor(&cluster, kSecond);
  monitor.Start();
  // Two tasks of 10 core-seconds each: 2/8 cores busy for 10 s.
  int done = 0;
  for (int i = 0; i < 2; ++i) {
    cluster.RunCpu(0, 10.0, [&](SimTime) {
      if (++done == 2) monitor.Stop();
    });
  }
  cluster.sim()->Run();
  ASSERT_GE(monitor.samples(0).size(), 5u);
  EXPECT_NEAR(monitor.samples(0)[2].cpu_utilization_pct, 25.0, 1.0);
  // Idle node shows zero.
  EXPECT_NEAR(monitor.samples(1)[2].cpu_utilization_pct, 0.0, 1e-6);
}

TEST(ResourceMonitorTest, RxThroughputReflectsTransfers) {
  ClusterSpec spec = SmallSpec();
  SimCluster cluster(spec);
  ResourceMonitor monitor(&cluster, kSecond);
  monitor.Start();
  // 1 GigE ~117 MB/s: a 400 MB transfer takes ~3.4 s.
  cluster.Transfer(0, 1, 400 * 1024 * 1024,
                   [&](SimTime) { monitor.Stop(); });
  cluster.sim()->Run();
  EXPECT_GT(monitor.PeakRxMBps(1), 100.0);
  EXPECT_LT(monitor.PeakRxMBps(1), 130.0);
  EXPECT_NEAR(monitor.PeakRxMBps(0), 0.0, 1e-6);
}

TEST(ResourceMonitorTest, StopIsIdempotentAndAllowsDrain) {
  SimCluster cluster(SmallSpec());
  ResourceMonitor monitor(&cluster, kSecond);
  monitor.Start();
  monitor.Stop();
  monitor.Stop();
  cluster.sim()->Run();  // must terminate: no pending sampling events
  EXPECT_EQ(cluster.sim()->pending(), 0u);
}

TEST(ResourceMonitorTest, MeanCpuOverWindow) {
  SimCluster cluster(SmallSpec());
  ResourceMonitor monitor(&cluster, kSecond);
  monitor.Start();
  cluster.RunCpu(0, 8.0, [&](SimTime) { monitor.Stop(); });  // 1 core busy
  cluster.sim()->Run();
  EXPECT_NEAR(monitor.MeanCpuPct(0), 12.5, 0.5);  // 1/8 cores
}

}  // namespace
}  // namespace mrmb
