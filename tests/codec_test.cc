#include "io/codec.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "io/record_gen.h"

namespace mrmb {
namespace {

TEST(CodecTest, RoundTripText) {
  const std::string input =
      "the quick brown fox jumps over the lazy dog, repeatedly: "
      "the quick brown fox jumps over the lazy dog";
  std::string compressed;
  ASSERT_TRUE(DeflateCompress(input, &compressed).ok());
  EXPECT_LT(compressed.size(), input.size());
  std::string restored;
  ASSERT_TRUE(DeflateDecompress(compressed, &restored).ok());
  EXPECT_EQ(restored, input);
}

TEST(CodecTest, RoundTripEmpty) {
  std::string compressed;
  ASSERT_TRUE(DeflateCompress("", &compressed).ok());
  std::string restored;
  ASSERT_TRUE(DeflateDecompress(compressed, &restored).ok());
  EXPECT_TRUE(restored.empty());
}

TEST(CodecTest, RoundTripBinary) {
  Rng rng(1);
  std::string input(100000, '\0');
  rng.Fill(input.data(), input.size());
  std::string compressed;
  ASSERT_TRUE(DeflateCompress(input, &compressed).ok());
  std::string restored;
  ASSERT_TRUE(DeflateDecompress(compressed, &restored).ok());
  EXPECT_EQ(restored, input);
}

TEST(CodecTest, RoundTripHighlyCompressible) {
  const std::string input(1 << 20, 'a');
  std::string compressed;
  ASSERT_TRUE(DeflateCompress(input, &compressed).ok());
  EXPECT_LT(compressed.size(), input.size() / 100);
  std::string restored;
  ASSERT_TRUE(DeflateDecompress(compressed, &restored).ok());
  EXPECT_EQ(restored, input);
}

TEST(CodecTest, DecompressRejectsGarbage) {
  std::string out;
  EXPECT_FALSE(DeflateDecompress("definitely not zlib data", &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(CodecTest, RatioRandomDataNearOne) {
  Rng rng(7);
  std::string input(65536, '\0');
  rng.Fill(input.data(), input.size());
  const double ratio = MeasureCompressionRatio(input);
  EXPECT_GT(ratio, 0.95);  // random bytes are incompressible
  EXPECT_LT(ratio, 1.10);
}

TEST(CodecTest, RatioTextWellBelowOne) {
  // Lowercase-letter payloads (our Text generator's alphabet) compress.
  RecordGenerator::Options options;
  options.type = DataType::kText;
  options.key_size = 64;
  options.value_size = 512;
  options.num_unique_keys = 8;
  RecordGenerator generator(options);
  std::string sample;
  std::string buf;
  for (int64_t i = 0; i < 100; ++i) {
    generator.SerializedValue(i, &buf);
    sample += buf;
  }
  const double ratio = MeasureCompressionRatio(sample);
  EXPECT_LT(ratio, 0.85);
  EXPECT_GT(ratio, 0.30);
}

TEST(CodecTest, RatioEmptyIsOne) {
  EXPECT_DOUBLE_EQ(MeasureCompressionRatio(""), 1.0);
}

}  // namespace
}  // namespace mrmb
