// Small online-statistics helpers used by the benchmark reporters.

#ifndef MRMB_COMMON_STATS_H_
#define MRMB_COMMON_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace mrmb {

// Running mean / min / max / stddev without storing samples (Welford).
class RunningStats {
 public:
  void Add(double x) {
    ++count_;
    if (count_ == 1) {
      min_ = max_ = x;
      mean_ = x;
      m2_ = 0;
      return;
    }
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  int64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0; }
  double min() const { return count_ ? min_ : 0; }
  double max() const { return count_ ? max_ : 0; }
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  int64_t count_ = 0;
  double min_ = 0;
  double max_ = 0;
  double mean_ = 0;
  double m2_ = 0;
};

// Stores samples; answers percentile queries. Meant for modest sample
// counts (resource-monitor traces, per-task timings).
class SampleSet {
 public:
  void Add(double x) {
    samples_.push_back(x);
    stats_.Add(x);
  }

  // p in [0, 100]. Linear interpolation between closest ranks.
  double Percentile(double p) {
    MRMB_CHECK(!samples_.empty());
    MRMB_CHECK_GE(p, 0.0);
    MRMB_CHECK_LE(p, 100.0);
    EnsureSorted();
    if (sorted_.size() == 1) return sorted_[0];
    const double rank =
        p / 100.0 * static_cast<double>(sorted_.size() - 1);
    const auto lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, sorted_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
  }

  double Median() { return Percentile(50); }

  const RunningStats& stats() const { return stats_; }
  size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  // Samples in insertion order (queries never reorder them).
  const std::vector<double>& samples() const { return samples_; }

 private:
  // Maintains a sorted shadow of `samples_`: only the samples added since
  // the last query are sorted and merged in, so an Add/query interleaving
  // costs O(new log new + n) per query instead of re-sorting all n samples,
  // and percentile queries leave the insertion-ordered samples() intact.
  void EnsureSorted() {
    if (sorted_.size() == samples_.size()) return;
    const auto old_end =
        sorted_.insert(sorted_.end(),
                       samples_.begin() + static_cast<int64_t>(sorted_.size()),
                       samples_.end());
    const int64_t merged = old_end - sorted_.begin();
    std::sort(sorted_.begin() + merged, sorted_.end());
    std::inplace_merge(sorted_.begin(), sorted_.begin() + merged,
                       sorted_.end());
  }

  std::vector<double> samples_;  // insertion order
  std::vector<double> sorted_;   // lazily maintained sorted shadow
  RunningStats stats_;
};

// Coefficient-of-variation style imbalance metric for per-reducer loads:
// max/mean. 1.0 means perfectly balanced.
double LoadImbalance(const std::vector<int64_t>& loads);

}  // namespace mrmb

#endif  // MRMB_COMMON_STATS_H_
