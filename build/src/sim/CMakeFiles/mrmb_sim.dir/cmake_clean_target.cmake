file(REMOVE_RECURSE
  "libmrmb_sim.a"
)
