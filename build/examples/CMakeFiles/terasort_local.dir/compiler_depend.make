# Empty compiler generated dependencies file for terasort_local.
# This may be replaced when dependencies are built.
