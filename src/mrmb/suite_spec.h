// Suite specification files: declarative descriptions of benchmark sweeps.
//
// The paper proposes a *standardized* suite users can run against their own
// clusters. A .suite file describes one or more sweeps in a simple INI-like
// syntax; the suite runner executes every combination and prints the
// figure-shaped tables:
//
//   # Fig. 2(a)-style sweep
//   [mr-avg-networks]
//   pattern = avg
//   network = 1gige, 10gige, ipoib-qdr   # list -> one series per value
//   shuffle = 8GB, 16GB, 32GB            # list -> one row per value
//   maps = 16
//   reduces = 8
//   slaves = 4
//
// Recognized keys: pattern, network, shuffle, kv, type, maps, reduces,
// slaves, cluster, scheduler, compress, zipf-exp, seed, plus the fault
// knobs map-fail-prob, reduce-fail-prob, straggler-prob,
// straggler-slowdown, speculative, max-attempts, fault-plan, crash-prob,
// fetch-fail-prob, max-fetch-failures, blacklist-threshold. `network`
// values become table columns; `shuffle` values become rows; all other
// keys are scalars (fault-plan, e.g.
// "kill_node:1@t=40s;degrade_link:2@t=10s,x0.25", is taken verbatim).

#ifndef MRMB_MRMB_SUITE_SPEC_H_
#define MRMB_MRMB_SUITE_SPEC_H_

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"
#include "mrmb/benchmark.h"

namespace mrmb {

struct SuiteSection {
  std::string name;
  // Raw key -> values (singletons for scalar keys).
  std::map<std::string, std::vector<std::string>> entries;
};

struct SuiteSpec {
  std::vector<SuiteSection> sections;
};

// Parses the INI-like suite syntax. Unknown keys, duplicate sections and
// entries outside a section are errors.
Result<SuiteSpec> ParseSuiteSpec(const std::string& text);

// Resolves one section into the benchmark sweep it describes: the returned
// matrix is options[network_index][shuffle_index].
struct ResolvedSection {
  std::string name;
  std::vector<std::string> series_labels;  // one per network
  std::vector<std::string> x_labels;       // one per shuffle size
  std::vector<std::vector<BenchmarkOptions>> options;
};

Result<ResolvedSection> ResolveSection(const SuiteSection& section);

// Runs every section of the suite, printing paper-style tables to `out`
// (and CSV if `csv` is set). Returns the first execution error.
Status RunSuite(const SuiteSpec& spec, bool csv, std::ostream* out);

}  // namespace mrmb

#endif  // MRMB_MRMB_SUITE_SPEC_H_
