// Ablation: straggler injection and speculative execution.
//
// The paper motivates MR-SKEW with "alternative techniques that can
// mitigate load imbalances" (Sect. 4.2). Speculative execution is Hadoop's
// built-in mitigation for *executor*-side imbalance (slow nodes rather
// than slow partitions). This bench injects stragglers at increasing
// probability and shows how much of the lost time map-task speculation
// recovers — and that it cannot help MR-SKEW, whose imbalance lives in the
// data, not the executor.

#include "bench/bench_util.h"

namespace {

double RunJob(const mrmb::BenchmarkOptions& options, double straggler_prob,
              bool speculative, double* map_phase, int* attempts) {
  using namespace mrmb;
  JobConf conf = options.ToJobConf();
  conf.straggler_prob = straggler_prob;
  conf.straggler_slowdown = 5.0;
  conf.speculative_execution = speculative;
  SimCluster cluster(options.ToClusterSpec());
  SimJobRunner runner(&cluster, conf, options.cost);
  auto result = runner.Run();
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  *map_phase = result->map_phase_seconds;
  *attempts = result->total_task_attempts;
  return result->job_seconds;
}

}  // namespace

int main() {
  using namespace mrmb;
  std::printf("=== Ablation: stragglers vs speculative execution "
              "(MR-AVG 16GB, IPoIB QDR) ===\n");

  BenchmarkOptions options;
  options.network = IpoibQdr();
  options.shuffle_bytes = 16 * kGB;
  options.num_maps = 32;
  options.num_reduces = 8;
  options.num_slaves = 4;

  std::printf("%12s %14s %14s %14s %14s %10s\n", "straggler_p",
              "job plain(s)", "job spec(s)", "map plain(s)", "map spec(s)",
              "backups");
  for (double prob : {0.0, 0.05, 0.1, 0.2, 0.3}) {
    double map_plain = 0;
    double map_spec = 0;
    int attempts_plain = 0;
    int attempts_spec = 0;
    const double job_plain =
        RunJob(options, prob, false, &map_plain, &attempts_plain);
    const double job_spec =
        RunJob(options, prob, true, &map_spec, &attempts_spec);
    std::printf("%12.2f %14.2f %14.2f %14.2f %14.2f %10d\n", prob, job_plain,
                job_spec, map_plain, map_spec,
                attempts_spec - attempts_plain);
  }

  std::printf("\n--- speculation vs data skew (it cannot help MR-SKEW) ---\n");
  for (DistributionPattern pattern :
       {DistributionPattern::kAverage, DistributionPattern::kSkewed}) {
    BenchmarkOptions o = options;
    o.pattern = pattern;
    double map_phase = 0;
    int attempts = 0;
    const double plain = RunJob(o, 0.0, false, &map_phase, &attempts);
    const double spec = RunJob(o, 0.0, true, &map_phase, &attempts);
    std::printf("  %-8s plain %8.2f s   speculative %8.2f s   (%+.1f%%)\n",
                DistributionPatternName(pattern), plain, spec,
                (plain - spec) / plain * 100.0);
  }
  return 0;
}
