file(REMOVE_RECURSE
  "CMakeFiles/mrmb_dfs.dir/dfs.cc.o"
  "CMakeFiles/mrmb_dfs.dir/dfs.cc.o.d"
  "libmrmb_dfs.a"
  "libmrmb_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrmb_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
