#include "io/writable.h"

#include <gtest/gtest.h>

#include <vector>

namespace mrmb {
namespace {

template <typename T>
std::string SerializeToString(const T& value) {
  BufferWriter writer;
  value.Serialize(&writer);
  return writer.data();
}

template <typename T>
T RoundTrip(const T& value) {
  const std::string wire = SerializeToString(value);
  BufferReader reader(wire);
  T out;
  EXPECT_TRUE(out.Deserialize(&reader).ok());
  EXPECT_TRUE(reader.AtEnd());
  return out;
}

TEST(BytesWritableTest, RoundTrip) {
  const std::vector<std::string> payloads = {
      std::string(), std::string("abc"), std::string(1000, 'x'),
      std::string("\x00\xff\x7f", 3)};
  for (const std::string& payload : payloads) {
    EXPECT_EQ(RoundTrip(BytesWritable(payload)).bytes(), payload);
  }
}

TEST(BytesWritableTest, WireFormatIsLengthPrefixed) {
  const std::string wire = SerializeToString(BytesWritable("hi"));
  ASSERT_EQ(wire.size(), 6u);
  EXPECT_EQ(static_cast<uint8_t>(wire[3]), 2);  // BE length 2
  EXPECT_EQ(wire.substr(4), "hi");
  EXPECT_EQ(BytesWritable::SerializedSize(2), 6u);
}

TEST(BytesWritableTest, Comparisons) {
  EXPECT_TRUE(BytesWritable("a") < BytesWritable("b"));
  EXPECT_TRUE(BytesWritable("a") < BytesWritable("ab"));
  EXPECT_TRUE(BytesWritable("x") == BytesWritable("x"));
}

TEST(TextTest, RoundTrip) {
  const std::vector<std::string> payloads = {
      std::string(), std::string("hello"), std::string(300, 'q')};
  for (const std::string& payload : payloads) {
    EXPECT_EQ(RoundTrip(Text(payload)).value(), payload);
  }
}

TEST(TextTest, WireFormatUsesVarint) {
  // 5-char text: 1-byte vint + 5 bytes.
  EXPECT_EQ(SerializeToString(Text("hello")).size(), 6u);
  EXPECT_EQ(Text::SerializedSize(5), 6u);
  // 300-char text: 3-byte vint (300 needs 2 magnitude bytes) + payload.
  EXPECT_EQ(Text::SerializedSize(300), 303u);
}

TEST(IntWritableTest, RoundTrip) {
  for (int32_t v : {0, 1, -1, 42, -100000, 2147483647, -2147483647 - 1}) {
    EXPECT_EQ(RoundTrip(IntWritable(v)).value(), v);
  }
}

TEST(IntWritableTest, WireIsFourBigEndianBytes) {
  const std::string wire = SerializeToString(IntWritable(0x01020304));
  ASSERT_EQ(wire.size(), 4u);
  EXPECT_EQ(static_cast<uint8_t>(wire[0]), 0x01);
  EXPECT_EQ(static_cast<uint8_t>(wire[3]), 0x04);
}

TEST(LongWritableTest, RoundTrip) {
  for (int64_t v : {int64_t{0}, int64_t{-1}, int64_t{1} << 40,
                    -(int64_t{1} << 40), int64_t{9223372036854775807}}) {
    EXPECT_EQ(RoundTrip(LongWritable(v)).value(), v);
  }
}

TEST(NullWritableTest, SerializesToNothing) {
  EXPECT_TRUE(SerializeToString(NullWritable()).empty());
  BufferReader reader("");
  NullWritable null;
  EXPECT_TRUE(null.Deserialize(&reader).ok());
}

TEST(WritableTest, TypeTags) {
  EXPECT_EQ(BytesWritable().type(), DataType::kBytesWritable);
  EXPECT_EQ(Text().type(), DataType::kText);
  EXPECT_EQ(IntWritable().type(), DataType::kIntWritable);
  EXPECT_EQ(LongWritable().type(), DataType::kLongWritable);
  EXPECT_EQ(NullWritable().type(), DataType::kNullWritable);
}

TEST(WritableTest, DeserializeTruncatedFails) {
  BytesWritable bytes;
  {
    const std::string wire{'\x00', '\x00', '\x00', '\x05', 'a', 'b'};
    BufferReader reader(wire);  // claims 5, has 2
    EXPECT_FALSE(bytes.Deserialize(&reader).ok());
  }
  Text text;
  {
    const std::string wire{'\x05', 'a', 'b'};
    BufferReader reader(wire);
    EXPECT_FALSE(text.Deserialize(&reader).ok());
  }
  IntWritable number;
  {
    BufferReader reader("\x01");
    EXPECT_FALSE(number.Deserialize(&reader).ok());
  }
}

TEST(DataTypeTest, Names) {
  EXPECT_STREQ(DataTypeName(DataType::kBytesWritable), "BytesWritable");
  EXPECT_STREQ(DataTypeName(DataType::kText), "Text");
  EXPECT_STREQ(DataTypeName(DataType::kIntWritable), "IntWritable");
  EXPECT_STREQ(DataTypeName(DataType::kLongWritable), "LongWritable");
  EXPECT_STREQ(DataTypeName(DataType::kNullWritable), "NullWritable");
}

TEST(DataTypeTest, LookupByName) {
  EXPECT_EQ(*DataTypeByName("BytesWritable"), DataType::kBytesWritable);
  EXPECT_EQ(*DataTypeByName("bytes"), DataType::kBytesWritable);
  EXPECT_EQ(*DataTypeByName("Text"), DataType::kText);
  EXPECT_EQ(*DataTypeByName("int"), DataType::kIntWritable);
  EXPECT_EQ(*DataTypeByName("LONG"), DataType::kLongWritable);
  EXPECT_EQ(*DataTypeByName("null"), DataType::kNullWritable);
  EXPECT_FALSE(DataTypeByName("doublewritable").ok());
}

TEST(SerializedSizeForTest, MatchesTypes) {
  EXPECT_EQ(SerializedSizeFor(DataType::kBytesWritable, 100), 104u);
  EXPECT_EQ(SerializedSizeFor(DataType::kText, 100), 101u);
  EXPECT_EQ(SerializedSizeFor(DataType::kText, 200), 202u);
  EXPECT_EQ(SerializedSizeFor(DataType::kText, 300), 303u);
  EXPECT_EQ(SerializedSizeFor(DataType::kIntWritable, 999), 4u);
  EXPECT_EQ(SerializedSizeFor(DataType::kLongWritable, 999), 8u);
  EXPECT_EQ(SerializedSizeFor(DataType::kNullWritable, 999), 0u);
}

}  // namespace
}  // namespace mrmb
