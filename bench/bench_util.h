// Shared helpers for the figure-reproduction bench binaries.

#ifndef MRMB_BENCH_BENCH_UTIL_H_
#define MRMB_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/units.h"
#include "mrmb/benchmark.h"
#include "mrmb/report.h"

namespace mrmb::bench {

// Runs one configuration and returns the job execution time in seconds;
// prints a one-line trace so long sweeps show progress.
inline double Measure(const BenchmarkOptions& options,
                      const std::string& series, const std::string& x) {
  auto result = RunMicroBenchmark(options);
  if (!result.ok()) {
    std::cerr << "FATAL: " << series << " @ " << x << ": "
              << result.status().ToString() << "\n";
    std::exit(1);
  }
  std::printf("  %-22s %-10s %10.3f s\n", series.c_str(), x.c_str(),
              result->job.job_seconds);
  std::fflush(stdout);
  return result->job.job_seconds;
}

// The shuffle sizes the Cluster A figures sweep.
inline std::vector<int64_t> ClusterASizes() {
  return {8 * kGB, 16 * kGB, 24 * kGB, 32 * kGB};
}

inline std::string GbLabel(int64_t bytes) {
  return std::to_string(bytes / kGB) + "GB";
}

}  // namespace mrmb::bench

#endif  // MRMB_BENCH_BENCH_UTIL_H_
