#include "mapred/job_conf.h"

#include <gtest/gtest.h>

namespace mrmb {
namespace {

JobConf ValidConf() {
  JobConf conf;
  conf.num_maps = 4;
  conf.num_reduces = 2;
  conf.records_per_map = 100;
  conf.record.key_size = 64;
  conf.record.value_size = 64;
  conf.record.num_unique_keys = 2;
  return conf;
}

TEST(JobConfTest, DefaultIsValid) {
  EXPECT_TRUE(JobConf().Validate().ok());
}

TEST(JobConfTest, ValidConfPasses) {
  EXPECT_TRUE(ValidConf().Validate().ok());
}

TEST(JobConfTest, TotalRecords) {
  JobConf conf = ValidConf();
  EXPECT_EQ(conf.total_records(), 400);
}

TEST(JobConfTest, RejectsBadTaskCounts) {
  JobConf conf = ValidConf();
  conf.num_maps = 0;
  EXPECT_FALSE(conf.Validate().ok());
  conf = ValidConf();
  conf.num_reduces = -1;
  EXPECT_FALSE(conf.Validate().ok());
}

TEST(JobConfTest, RejectsNegativeRecords) {
  JobConf conf = ValidConf();
  conf.records_per_map = -1;
  EXPECT_FALSE(conf.Validate().ok());
}

TEST(JobConfTest, RejectsTinyKeys) {
  JobConf conf = ValidConf();
  conf.record.key_size = 4;
  EXPECT_FALSE(conf.Validate().ok());
}

TEST(JobConfTest, RejectsBadSlots) {
  JobConf conf = ValidConf();
  conf.map_slots_per_node = 0;
  EXPECT_FALSE(conf.Validate().ok());
  conf = ValidConf();
  conf.reduce_slots_per_node = -2;
  EXPECT_FALSE(conf.Validate().ok());
}

TEST(JobConfTest, RejectsBadSortBuffer) {
  JobConf conf = ValidConf();
  conf.io_sort_bytes = 0;
  EXPECT_FALSE(conf.Validate().ok());
  conf = ValidConf();
  conf.spill_percent = 0.0;
  EXPECT_FALSE(conf.Validate().ok());
  conf = ValidConf();
  conf.spill_percent = 1.5;
  EXPECT_FALSE(conf.Validate().ok());
}

TEST(JobConfTest, RejectsBadShuffleParams) {
  JobConf conf = ValidConf();
  conf.parallel_copies = 0;
  EXPECT_FALSE(conf.Validate().ok());
  conf = ValidConf();
  conf.slowstart = -0.1;
  EXPECT_FALSE(conf.Validate().ok());
  conf = ValidConf();
  conf.slowstart = 1.1;
  EXPECT_FALSE(conf.Validate().ok());
  conf = ValidConf();
  conf.shuffle_input_buffer_fraction = 0.0;
  EXPECT_FALSE(conf.Validate().ok());
}

TEST(JobConfTest, RejectsBadPipelineKnobs) {
  JobConf conf = ValidConf();
  conf.reduce_slowstart = -0.01;
  EXPECT_FALSE(conf.Validate().ok());
  conf = ValidConf();
  conf.reduce_slowstart = 1.01;
  EXPECT_FALSE(conf.Validate().ok());
  conf = ValidConf();
  conf.merge_factor = 1;
  EXPECT_FALSE(conf.Validate().ok());
  conf = ValidConf();
  conf.fetch_latency_ms = -1;
  EXPECT_FALSE(conf.Validate().ok());
  conf = ValidConf();
  conf.fetch_bandwidth_mbps = -1;
  EXPECT_FALSE(conf.Validate().ok());
}

TEST(JobConfTest, RejectsBadContainersAndKeys) {
  JobConf conf = ValidConf();
  conf.yarn_container_bytes = 0;
  EXPECT_FALSE(conf.Validate().ok());
  conf = ValidConf();
  conf.record.num_unique_keys = 0;
  EXPECT_FALSE(conf.Validate().ok());
}

TEST(JobConfTest, BoundaryValuesAccepted) {
  JobConf conf = ValidConf();
  conf.slowstart = 0.0;
  EXPECT_TRUE(conf.Validate().ok());
  conf.slowstart = 1.0;
  EXPECT_TRUE(conf.Validate().ok());
  conf.spill_percent = 1.0;
  EXPECT_TRUE(conf.Validate().ok());
  conf.records_per_map = 0;
  EXPECT_TRUE(conf.Validate().ok());
  conf.reduce_slowstart = 0.0;
  EXPECT_TRUE(conf.Validate().ok());
  conf.reduce_slowstart = 1.0;
  EXPECT_TRUE(conf.Validate().ok());
  conf.merge_factor = 2;
  EXPECT_TRUE(conf.Validate().ok());
}

TEST(JobConfTest, SpillEngineKnobValidation) {
  JobConf conf = ValidConf();
  conf.spill_budget_bytes = -2;
  EXPECT_FALSE(conf.Validate().ok());
  conf = ValidConf();
  conf.spill_cache_bytes = -1;
  EXPECT_FALSE(conf.Validate().ok());
  conf = ValidConf();
  conf.spill_block_bytes = 4095;
  EXPECT_FALSE(conf.Validate().ok());
  conf = ValidConf();
  conf.spill_budget_bytes = 0;
  conf.spill_cache_bytes = 0;
  conf.spill_block_bytes = 4096;
  EXPECT_TRUE(conf.Validate().ok());
}

TEST(JobConfTest, SpillEngineEnablement) {
  JobConf conf;
  EXPECT_FALSE(conf.spill_engine_enabled());  // budget -1, no dir
  conf.spill_budget_bytes = 0;
  EXPECT_TRUE(conf.spill_engine_enabled());
  EXPECT_EQ(conf.effective_spill_budget_bytes(), 0);
  conf.spill_budget_bytes = -1;
  conf.spill_dir = "/tmp/spills";
  EXPECT_TRUE(conf.spill_engine_enabled());  // dir alone enables it
  EXPECT_EQ(conf.effective_spill_budget_bytes(), 0);
  conf.spill_budget_bytes = 1 << 20;
  EXPECT_EQ(conf.effective_spill_budget_bytes(), 1 << 20);
}

TEST(SchedulerKindTest, Names) {
  EXPECT_STREQ(SchedulerKindName(SchedulerKind::kMrv1), "MRv1");
  EXPECT_STREQ(SchedulerKindName(SchedulerKind::kYarn), "YARN");
}

}  // namespace
}  // namespace mrmb
