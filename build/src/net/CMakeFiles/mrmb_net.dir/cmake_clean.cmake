file(REMOVE_RECURSE
  "CMakeFiles/mrmb_net.dir/fabric.cc.o"
  "CMakeFiles/mrmb_net.dir/fabric.cc.o.d"
  "CMakeFiles/mrmb_net.dir/network_profile.cc.o"
  "CMakeFiles/mrmb_net.dir/network_profile.cc.o.d"
  "libmrmb_net.a"
  "libmrmb_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrmb_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
