// Reproduces Fig. 3: the three distribution patterns under the Hadoop
// NextGen (YARN) architecture.
//
// Paper setup (Sect. 5.2): 1 KB key/value pairs, 32 map / 16 reduce tasks
// on 8 slave nodes of Cluster A, shuffle sizes swept by pair count.
//
// Expected shapes: ~10-11% gain for 10 GigE, ~17-18% for IPoIB QDR; the
// skewed distribution now costs >3x the average one (16 reducers make the
// even share smaller while the skewed reducer still holds ~50%).

#include "bench/bench_util.h"

int main() {
  using namespace mrmb;
  std::printf("=== Fig. 3: distribution patterns under YARN (Cluster A) ===\n");

  const std::vector<NetworkProfile> networks = {OneGigE(), TenGigE(),
                                                IpoibQdr()};
  const std::vector<DistributionPattern> patterns = {
      DistributionPattern::kAverage, DistributionPattern::kRandom,
      DistributionPattern::kSkewed};

  for (DistributionPattern pattern : patterns) {
    SweepTable table(std::string("Fig. 3 ") +
                         DistributionPatternName(pattern) +
                         " — YARN, 32M/16R, 8 slaves, 1KB k/v",
                     "ShuffleSize");
    for (const NetworkProfile& network : networks) {
      for (int64_t size : bench::ClusterASizes()) {
        BenchmarkOptions options;
        options.pattern = pattern;
        options.network = network;
        options.scheduler = SchedulerKind::kYarn;
        options.shuffle_bytes = size;
        options.num_maps = 32;
        options.num_reduces = 16;
        options.num_slaves = 8;
        options.key_size = 512;
        options.value_size = 512;
        const double seconds =
            bench::Measure(options, network.name, bench::GbLabel(size));
        table.Add(network.name, bench::GbLabel(size), seconds);
      }
    }
    table.PrintWithImprovement(OneGigE().name, &std::cout);
  }

  std::printf("\n--- MR-SKEW / MR-AVG ratio under YARN (paper: >3x) ---\n");
  for (const NetworkProfile& network : networks) {
    BenchmarkOptions options;
    options.network = network;
    options.scheduler = SchedulerKind::kYarn;
    options.shuffle_bytes = 16 * kGB;
    options.num_maps = 32;
    options.num_reduces = 16;
    options.num_slaves = 8;
    options.pattern = DistributionPattern::kAverage;
    auto avg = RunMicroBenchmark(options);
    options.pattern = DistributionPattern::kSkewed;
    auto skew = RunMicroBenchmark(options);
    if (avg.ok() && skew.ok()) {
      std::printf("  %-22s %.2fx\n", network.name.c_str(),
                  skew->job.job_seconds / avg->job.job_seconds);
    }
  }
  return 0;
}
