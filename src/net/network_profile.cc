#include "net/network_profile.h"

#include "common/strings.h"

namespace mrmb {

NetworkProfile OneGigE() {
  NetworkProfile p;
  p.name = "1GigE";
  p.raw_bandwidth_bps = 1e9;
  p.efficiency = 0.94;  // ~117 MB/s payload; Fig. 7 observes ~110 MB/s.
  p.latency = 55 * kMicrosecond;
  p.per_message_overhead = 18 * kMicrosecond;
  p.sender_cpu_per_byte = 9.0e-10;
  p.receiver_cpu_per_byte = 9.0e-10;
  return p;
}

NetworkProfile TenGigE() {
  NetworkProfile p;
  p.name = "10GigE";
  p.raw_bandwidth_bps = 1e10;
  p.efficiency = 0.31;  // NetEffect NE020-era TCP: ~390 MB/s sustained payload
                        // (Fig. 7 shows a ~520 MB/s burst peak).
                        // (Fig. 7 observes a ~520 MB/s receive peak).
  p.latency = 20 * kMicrosecond;
  p.per_message_overhead = 14 * kMicrosecond;
  p.sender_cpu_per_byte = 7.0e-10;
  p.receiver_cpu_per_byte = 7.0e-10;
  return p;
}

NetworkProfile IpoibQdr() {
  NetworkProfile p;
  p.name = "IPoIB-QDR(32Gbps)";
  p.raw_bandwidth_bps = 3.2e10;
  // IPoIB (TCP/IP emulated over IB verbs) reaches only a fraction of the
  // signalling rate at the application: ~1.05 GB/s on QDR; Fig. 7 observes a
  // ~950 MB/s receive peak during shuffle.
  p.efficiency = 0.28;
  p.latency = 16 * kMicrosecond;
  p.per_message_overhead = 12 * kMicrosecond;
  // The host still runs the TCP/IP stack, but IPoIB connected mode uses a
  // 64 KB MTU: per-packet work drops by an order of magnitude.
  p.sender_cpu_per_byte = 2.5e-10;
  p.receiver_cpu_per_byte = 2.5e-10;
  return p;
}

NetworkProfile IpoibFdr() {
  NetworkProfile p;
  p.name = "IPoIB-FDR(56Gbps)";
  p.raw_bandwidth_bps = 5.6e10;
  p.efficiency = 0.30;  // ~2.1 GB/s application payload on FDR IPoIB.
  p.latency = 14 * kMicrosecond;
  p.per_message_overhead = 11 * kMicrosecond;
  p.sender_cpu_per_byte = 2.2e-10;
  p.receiver_cpu_per_byte = 2.2e-10;
  return p;
}

NetworkProfile RdmaFdr() {
  NetworkProfile p;
  p.name = "RDMA-FDR(56Gbps)";
  p.raw_bandwidth_bps = 5.6e10;
  p.efficiency = 0.83;  // near wire-rate: ~5.8 GB/s payload.
  p.latency = 3 * kMicrosecond;
  p.per_message_overhead = 2 * kMicrosecond;
  // Kernel bypass: no per-byte stack cost worth mentioning.
  p.sender_cpu_per_byte = 6.0e-11;
  p.receiver_cpu_per_byte = 4.0e-11;
  p.rdma = true;
  return p;
}

Result<NetworkProfile> NetworkProfileByName(const std::string& name) {
  const std::string key = ToLower(name);
  if (key == "1gige" || key == "1ge" || key == "gige" || key == "1g") {
    return OneGigE();
  }
  if (key == "10gige" || key == "10ge" || key == "10g") {
    return TenGigE();
  }
  if (key == "ipoib-qdr" || key == "ipoib_qdr" || key == "ipoibqdr" ||
      key == "ipoib32" || key == "qdr") {
    return IpoibQdr();
  }
  if (key == "ipoib-fdr" || key == "ipoib_fdr" || key == "ipoibfdr" ||
      key == "ipoib56" || key == "fdr") {
    return IpoibFdr();
  }
  if (key == "rdma-fdr" || key == "rdma_fdr" || key == "rdmafdr" ||
      key == "rdma" || key == "rdma56") {
    return RdmaFdr();
  }
  return Status::InvalidArgument("unknown network profile: '" + name + "'");
}

std::vector<NetworkProfile> AllNetworkProfiles() {
  return {OneGigE(), TenGigE(), IpoibQdr(), IpoibFdr(), RdmaFdr()};
}

}  // namespace mrmb
