// Ablation: how much of the RDMA engine's win comes from fetch/merge
// overlap (the MRoIB/HOMR pipelining) versus raw kernel-bypass bandwidth?
//
// Sweeps rdma_overlap_fraction from 0 (no pipelining: RDMA is only a fast
// NIC) to 0.9 (the calibrated default) on the Fig. 8 configuration.

#include "bench/bench_util.h"

int main() {
  using namespace mrmb;
  std::printf("=== Ablation: RDMA shuffle/merge overlap fraction ===\n");

  BenchmarkOptions base;
  base.cluster = ClusterKind::kClusterB;
  base.num_maps = 32;
  base.num_reduces = 16;
  base.num_slaves = 8;
  base.shuffle_bytes = 32 * kGB;
  base.key_size = 512;
  base.value_size = 512;

  base.network = IpoibFdr();
  const double t_ipoib = bench::Measure(base, "IPoIB-FDR(baseline)", "32GB");

  SweepTable table("RDMA win vs overlap fraction (32GB, Cluster B)",
                   "Overlap");
  for (double overlap : {0.0, 0.25, 0.5, 0.75, 0.9}) {
    BenchmarkOptions options = base;
    options.network = RdmaFdr();
    options.cost.rdma_overlap_fraction = overlap;
    const std::string label = std::to_string(overlap);
    const double seconds = bench::Measure(options, "RDMA-FDR", label);
    table.Add("RDMA-FDR", label, seconds);
    std::printf("    -> improvement over IPoIB: %.1f%%\n",
                (t_ipoib - seconds) / t_ipoib * 100.0);
  }
  table.Print(&std::cout);
  return 0;
}
