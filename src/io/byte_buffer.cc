#include "io/byte_buffer.h"

namespace mrmb {

void BufferWriter::AppendFixed32(uint32_t value) {
  char bytes[4];
  bytes[0] = static_cast<char>(value >> 24);
  bytes[1] = static_cast<char>(value >> 16);
  bytes[2] = static_cast<char>(value >> 8);
  bytes[3] = static_cast<char>(value);
  AppendRaw(bytes, sizeof(bytes));
}

void BufferWriter::AppendFixed64(uint64_t value) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<char>(value >> (56 - 8 * i));
  }
  AppendRaw(bytes, sizeof(bytes));
}

void BufferWriter::AppendVarint64(int64_t value) {
  // Hadoop WritableUtils.writeVLong encoding.
  if (value >= -112 && value <= 127) {
    AppendByte(static_cast<uint8_t>(value));
    return;
  }
  int len = -112;
  uint64_t magnitude;
  if (value < 0) {
    magnitude = ~static_cast<uint64_t>(value);  // one's complement
    len = -120;
  } else {
    magnitude = static_cast<uint64_t>(value);
  }
  uint64_t tmp = magnitude;
  while (tmp != 0) {
    tmp >>= 8;
    --len;
  }
  AppendByte(static_cast<uint8_t>(len));
  const int num_bytes = (len < -120) ? -(len + 120) : -(len + 112);
  for (int idx = num_bytes; idx != 0; --idx) {
    const int shift = (idx - 1) * 8;
    AppendByte(static_cast<uint8_t>((magnitude >> shift) & 0xFF));
  }
}

size_t VarintLength(int64_t value) {
  if (value >= -112 && value <= 127) return 1;
  uint64_t magnitude = value < 0 ? ~static_cast<uint64_t>(value)
                                 : static_cast<uint64_t>(value);
  size_t bytes = 0;
  while (magnitude != 0) {
    magnitude >>= 8;
    ++bytes;
  }
  return 1 + bytes;
}

Status BufferReader::ReadByte(uint8_t* value) {
  if (remaining() < 1) return Status::OutOfRange("buffer underflow");
  *value = static_cast<uint8_t>(data_[pos_++]);
  return Status::OK();
}

Status BufferReader::ReadFixed32(uint32_t* value) {
  if (remaining() < 4) return Status::OutOfRange("buffer underflow");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v = (v << 8) | static_cast<uint8_t>(data_[pos_ + static_cast<size_t>(i)]);
  }
  pos_ += 4;
  *value = v;
  return Status::OK();
}

Status BufferReader::ReadFixed64(uint64_t* value) {
  if (remaining() < 8) return Status::OutOfRange("buffer underflow");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | static_cast<uint8_t>(data_[pos_ + static_cast<size_t>(i)]);
  }
  pos_ += 8;
  *value = v;
  return Status::OK();
}

Status BufferReader::ReadVarint64(int64_t* value) {
  size_t length = 0;
  MRMB_RETURN_IF_ERROR(
      DecodeVarint64(data_.substr(pos_), value, &length));
  pos_ += length;
  return Status::OK();
}

Status BufferReader::ReadRaw(size_t len, std::string_view* out) {
  if (remaining() < len) return Status::OutOfRange("buffer underflow");
  *out = data_.substr(pos_, len);
  pos_ += len;
  return Status::OK();
}

Status DecodeVarint64(std::string_view data, int64_t* value, size_t* length) {
  if (data.empty()) return Status::OutOfRange("vint underflow");
  const auto first = static_cast<int8_t>(data[0]);
  if (first >= -112) {
    *value = first;
    *length = 1;
    return Status::OK();
  }
  const bool negative = first < -120;
  const int num_bytes = negative ? -(first + 120) : -(first + 112);
  if (data.size() < static_cast<size_t>(num_bytes) + 1) {
    return Status::OutOfRange("vint underflow");
  }
  uint64_t magnitude = 0;
  for (int i = 0; i < num_bytes; ++i) {
    magnitude = (magnitude << 8) |
                static_cast<uint8_t>(data[static_cast<size_t>(i) + 1]);
  }
  *value = negative ? static_cast<int64_t>(~magnitude)
                    : static_cast<int64_t>(magnitude);
  *length = static_cast<size_t>(num_bytes) + 1;
  return Status::OK();
}

}  // namespace mrmb
