
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/byte_buffer.cc" "src/io/CMakeFiles/mrmb_io.dir/byte_buffer.cc.o" "gcc" "src/io/CMakeFiles/mrmb_io.dir/byte_buffer.cc.o.d"
  "/root/repo/src/io/codec.cc" "src/io/CMakeFiles/mrmb_io.dir/codec.cc.o" "gcc" "src/io/CMakeFiles/mrmb_io.dir/codec.cc.o.d"
  "/root/repo/src/io/comparator.cc" "src/io/CMakeFiles/mrmb_io.dir/comparator.cc.o" "gcc" "src/io/CMakeFiles/mrmb_io.dir/comparator.cc.o.d"
  "/root/repo/src/io/kv_buffer.cc" "src/io/CMakeFiles/mrmb_io.dir/kv_buffer.cc.o" "gcc" "src/io/CMakeFiles/mrmb_io.dir/kv_buffer.cc.o.d"
  "/root/repo/src/io/merge.cc" "src/io/CMakeFiles/mrmb_io.dir/merge.cc.o" "gcc" "src/io/CMakeFiles/mrmb_io.dir/merge.cc.o.d"
  "/root/repo/src/io/record_gen.cc" "src/io/CMakeFiles/mrmb_io.dir/record_gen.cc.o" "gcc" "src/io/CMakeFiles/mrmb_io.dir/record_gen.cc.o.d"
  "/root/repo/src/io/writable.cc" "src/io/CMakeFiles/mrmb_io.dir/writable.cc.o" "gcc" "src/io/CMakeFiles/mrmb_io.dir/writable.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mrmb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
