#include "sim/simulator.h"

#include <utility>

namespace mrmb {

EventId Simulator::ScheduleAt(SimTime at, std::function<void()> fn) {
  MRMB_CHECK_GE(at, now_) << "cannot schedule into the past";
  MRMB_CHECK(fn != nullptr);
  const EventId id = next_id_++;
  queue_.push(Entry{at, id});
  callbacks_.emplace(id, std::move(fn));
  ++live_events_;
  return id;
}

bool Simulator::Cancel(EventId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  --live_events_;
  return true;
}

bool Simulator::PopNext(Entry* out) {
  while (!queue_.empty()) {
    Entry top = queue_.top();
    queue_.pop();
    if (callbacks_.count(top.id) != 0) {
      *out = top;
      return true;
    }
    // Cancelled: skip the stale heap entry.
  }
  return false;
}

bool Simulator::Step() {
  Entry entry;
  if (!PopNext(&entry)) return false;
  MRMB_CHECK_GE(entry.time, now_);
  now_ = entry.time;
  auto it = callbacks_.find(entry.id);
  std::function<void()> fn = std::move(it->second);
  callbacks_.erase(it);
  --live_events_;
  ++events_processed_;
  fn();
  return true;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(SimTime deadline) {
  MRMB_CHECK_GE(deadline, now_);
  Entry entry;
  while (true) {
    if (!PopNext(&entry)) break;
    if (entry.time > deadline) {
      // Not due yet: put it back and stop.
      queue_.push(entry);
      now_ = deadline;
      return;
    }
    now_ = entry.time;
    auto it = callbacks_.find(entry.id);
    std::function<void()> fn = std::move(it->second);
    callbacks_.erase(it);
    --live_events_;
    ++events_processed_;
    fn();
  }
  now_ = std::max(now_, deadline);
}

}  // namespace mrmb
