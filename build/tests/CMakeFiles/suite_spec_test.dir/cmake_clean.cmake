file(REMOVE_RECURSE
  "CMakeFiles/suite_spec_test.dir/suite_spec_test.cc.o"
  "CMakeFiles/suite_spec_test.dir/suite_spec_test.cc.o.d"
  "suite_spec_test"
  "suite_spec_test.pdb"
  "suite_spec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suite_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
