// Companion micro-benchmark: Hadoop RPC over high-performance networks.
//
// Reproduces the shape of the group's sibling suite (paper ref [16],
// "A Micro-benchmark Suite for Evaluating Hadoop RPC on High-Performance
// Networks"): RPC round-trip latency vs payload size, and aggregate
// throughput vs concurrent clients, over every interconnect. RPC sits
// under all of MapReduce's control traffic, so these numbers bound how
// fast heartbeats, task assignment and job submission can go.

#include "bench/bench_util.h"
#include "rpc/rpc.h"

int main() {
  using namespace mrmb;
  std::printf("=== Hadoop RPC micro-benchmarks (companion suite) ===\n");

  std::printf("\n--- round-trip latency (us) vs payload size ---\n");
  std::printf("%-12s", "Payload");
  for (const NetworkProfile& network : AllNetworkProfiles()) {
    std::printf(" %20s", network.name.c_str());
  }
  std::printf("\n");
  for (int64_t payload : {64, 1024, 16 * 1024, 256 * 1024, 1024 * 1024}) {
    std::printf("%-12s", FormatBytes(payload).c_str());
    for (const NetworkProfile& network : AllNetworkProfiles()) {
      const auto result =
          RpcLatencyBenchmark(ClusterA(network, 4), payload, 100);
      std::printf(" %20.1f", result.mean_rtt_us);
    }
    std::printf("\n");
  }

  std::printf("\n--- throughput (calls/s, 1 KB payload) vs clients ---\n");
  std::printf("%-12s", "Clients");
  for (const NetworkProfile& network : AllNetworkProfiles()) {
    std::printf(" %20s", network.name.c_str());
  }
  std::printf("\n");
  for (int clients : {1, 4, 16, 64}) {
    std::printf("%-12d", clients);
    for (const NetworkProfile& network : AllNetworkProfiles()) {
      const auto result =
          RpcThroughputBenchmark(ClusterA(network, 8), clients, 200, 1024);
      std::printf(" %20.0f", result.calls_per_second);
    }
    std::printf("\n");
  }

  std::printf("\n--- handler pool sweep (64 clients, 1 KB) ---\n");
  for (int handlers : {1, 4, 10, 32}) {
    RpcConfig config;
    config.handler_threads = handlers;
    const auto result = RpcThroughputBenchmark(ClusterA(IpoibQdr(), 8), 64,
                                               200, 1024, config);
    std::printf("  handlers=%-3d %10.0f calls/s   (max queue %lld)\n",
                handlers, result.calls_per_second,
                static_cast<long long>(result.max_queue_depth));
  }
  return 0;
}
