#include "dfs/output_committer.h"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/strings.h"

namespace mrmb {

namespace fs = std::filesystem;

FileOutputCommitter::FileOutputCommitter(std::string output_dir)
    : output_dir_(std::move(output_dir)) {}

std::string FileOutputCommitter::temporary_dir() const {
  return output_dir_ + "/_temporary";
}

Status FileOutputCommitter::SetupJob() const {
  std::error_code ec;
  fs::create_directories(temporary_dir(), ec);
  if (ec) {
    return Status::IOError(StringPrintf("cannot create %s: %s",
                                        temporary_dir().c_str(),
                                        ec.message().c_str()));
  }
  return Status::OK();
}

std::string FileOutputCommitter::AttemptPath(int task, int attempt) const {
  return StringPrintf("%s/attempt-%d-%d.tmp", temporary_dir().c_str(), task,
                      attempt);
}

std::string FileOutputCommitter::CommittedPath(int task) const {
  return StringPrintf("%s/part-%d", output_dir_.c_str(), task);
}

Status FileOutputCommitter::CommitTask(int task, int attempt) const {
  const std::string staged = AttemptPath(task, attempt);
  if (TaskCommitted(task)) {
    // A faster attempt (or a previous run) already won; this attempt's
    // output is byte-identical by construction, so just discard it.
    ::unlink(staged.c_str());
    return Status::OK();
  }
  if (::rename(staged.c_str(), CommittedPath(task).c_str()) != 0) {
    return Status::IOError(StringPrintf("rename %s: %s", staged.c_str(),
                                        std::strerror(errno)));
  }
  return Status::OK();
}

Status FileOutputCommitter::AbortTask(int task, int attempt) const {
  ::unlink(AttemptPath(task, attempt).c_str());
  return Status::OK();
}

bool FileOutputCommitter::TaskCommitted(int task) const {
  std::error_code ec;
  return fs::exists(CommittedPath(task), ec) && !ec;
}

Result<int64_t> FileOutputCommitter::CleanupOrphans() const {
  std::error_code ec;
  const fs::path tmp = temporary_dir();
  if (!fs::exists(tmp, ec) || ec) return static_cast<int64_t>(0);
  int64_t swept = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(tmp, ec)) {
    std::error_code remove_ec;
    const auto removed = fs::remove_all(entry.path(), remove_ec);
    if (!remove_ec && removed > 0) ++swept;
  }
  if (ec) {
    return Status::IOError(StringPrintf("cannot sweep %s: %s",
                                        tmp.string().c_str(),
                                        ec.message().c_str()));
  }
  return swept;
}

Status FileOutputCommitter::CommitJob() const {
  std::error_code ec;
  fs::remove_all(temporary_dir(), ec);
  if (ec) {
    return Status::IOError(StringPrintf("cannot remove %s: %s",
                                        temporary_dir().c_str(),
                                        ec.message().c_str()));
  }
  std::ofstream success(output_dir_ + "/_SUCCESS",
                        std::ios::binary | std::ios::trunc);
  if (!success) {
    return Status::IOError("cannot write " + output_dir_ + "/_SUCCESS");
  }
  return Status::OK();
}

}  // namespace mrmb
