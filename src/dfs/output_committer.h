// Two-phase output commit over the local filesystem — Hadoop's
// FileOutputCommitter protocol, scoped to one job's output directory.
//
// The protocol's whole job is to make task output all-or-nothing under
// crashes and attempt retries:
//
//   1. An attempt writes its output to a private staging file,
//      `_temporary/attempt-<task>-<attempt>.tmp`, and fsyncs it.
//   2. Commit promotes the staging file to its final name `part-<task>`
//      with one rename — atomic on POSIX, so readers (and a resumed run)
//      see either the whole committed output or none of it. The first
//      commit wins; a speculative or retried attempt that loses simply
//      discards its staging file.
//   3. Job commit removes `_temporary` wholesale and drops a `_SUCCESS`
//      marker, the signal downstream consumers key on.
//
// A crash between 1 and 2 leaves an orphan under `_temporary`;
// CleanupOrphans (run by resume before any new attempt starts) sweeps
// them, making attempt staging idempotent across process lifetimes.

#ifndef MRMB_DFS_OUTPUT_COMMITTER_H_
#define MRMB_DFS_OUTPUT_COMMITTER_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace mrmb {

class FileOutputCommitter {
 public:
  // `output_dir` is the job's final output directory; created (with its
  // `_temporary` staging subdirectory) by SetupJob.
  explicit FileOutputCommitter(std::string output_dir);

  Status SetupJob() const;

  // Staging path for one task attempt's output. The attempt writes and
  // fsyncs this file itself; the committer only names it.
  std::string AttemptPath(int task, int attempt) const;
  // Final, committed path for a task's output: `part-<task>`.
  std::string CommittedPath(int task) const;

  // Promotes an attempt's staged file to the committed name. Loses
  // gracefully: if the task is already committed (a faster attempt or a
  // previous run won), the staged file is discarded and OK is returned.
  Status CommitTask(int task, int attempt) const;

  // Drops an attempt's staged file, if any.
  Status AbortTask(int task, int attempt) const;

  // True when `part-<task>` exists.
  bool TaskCommitted(int task) const;

  // Removes every stale entry under `_temporary` (staged output whose
  // attempt died with a crashed process). Returns the number swept.
  Result<int64_t> CleanupOrphans() const;

  // Removes `_temporary` and writes the `_SUCCESS` marker.
  Status CommitJob() const;

  const std::string& output_dir() const { return output_dir_; }
  std::string temporary_dir() const;

 private:
  const std::string output_dir_;
};

}  // namespace mrmb

#endif  // MRMB_DFS_OUTPUT_COMMITTER_H_
