// Deterministic fault injection plans for the cluster simulation.
//
// A FaultPlan composes *scheduled* fault events (a node dies at a known
// simulated time, a link degrades to a fraction of its bandwidth) with
// *probabilistic* hazards (a per-heartbeat node crash probability, a
// per-fetch shuffle failure probability). Plans are plain data: the
// SimJobRunner interprets them, drawing every random decision from the job
// seed, so a given (plan, seed) pair always reproduces the same timeline.
//
// Plans parse from a compact spec string usable from CLI flags and .suite
// files. Events are separated by ';':
//
//   kill_node:3@t=40s                 node 3 crashes 40 s into the run
//   recover_node:3@t=90s              node 3 rejoins with empty disks
//   degrade_link:2@t=10s,x0.25        node 2's NIC drops to 25% bandwidth
//   crash_prob:0.001                  per-heartbeat hazard for every node
//   fetch_fail_prob:0.01              per-fetch shuffle flakiness
//
// e.g. "kill_node:3@t=40s;degrade_link:2@t=10s,x0.25;fetch_fail_prob:0.01".

#ifndef MRMB_SIM_FAULT_PLAN_H_
#define MRMB_SIM_FAULT_PLAN_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace mrmb {

enum class FaultEventKind {
  kKillNode,     // node crashes: tasks die, stored map output is lost
  kRecoverNode,  // node rejoins with fresh (empty) local state
  kDegradeLink,  // node's NIC capacity is scaled by `factor`
};

const char* FaultEventKindName(FaultEventKind kind);

struct FaultEvent {
  FaultEventKind kind = FaultEventKind::kKillNode;
  int node = 0;
  double at_seconds = 0;
  // kDegradeLink only: multiplier on the node's NIC bandwidth. 1.0 restores
  // the full link; values above 1.0 are allowed (e.g. modelling a repaired
  // autoneg fault).
  double factor = 1.0;

  bool operator==(const FaultEvent&) const = default;
};

struct FaultPlan {
  // Scheduled events, applied at their absolute simulated times.
  std::vector<FaultEvent> events;
  // Per-heartbeat probability that a live node crashes (hazard model).
  double node_crash_prob = 0;
  // Per-fetch probability that a shuffle fetch from a live node fails and
  // must be retried (flaky links, dropped connections).
  double fetch_failure_prob = 0;

  bool empty() const {
    return events.empty() && node_crash_prob == 0 && fetch_failure_prob == 0;
  }

  // Range-checks every field; node indices are checked against the actual
  // cluster size by the runner (the plan does not know it).
  Status Validate() const;

  // Canonical spec string; Parse(ToString()) round-trips.
  std::string ToString() const;

  // Parses the ';'-separated spec syntax above. Whitespace around tokens is
  // ignored; an empty spec yields an empty plan.
  static Result<FaultPlan> Parse(const std::string& spec);
};

}  // namespace mrmb

#endif  // MRMB_SIM_FAULT_PLAN_H_
