// Property tests: invariants that must hold for *any* job configuration.
// Each parameterized case draws a random but valid configuration and checks
// conservation, accounting and ordering invariants of the simulation.

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"
#include "mapred/sim_runner.h"
#include "net/network_profile.h"

namespace mrmb {
namespace {

struct RandomConfig {
  JobConf conf;
  ClusterSpec spec;
};

RandomConfig DrawConfig(uint64_t seed) {
  Rng rng(seed);
  RandomConfig out{JobConf{}, ClusterA(OneGigE(), 2)};
  JobConf& conf = out.conf;
  conf.num_maps = static_cast<int>(rng.UniformRange(1, 24));
  conf.num_reduces = static_cast<int>(rng.UniformRange(1, 12));
  conf.records_per_map = rng.UniformRange(0, 20000);
  conf.record.key_size = static_cast<size_t>(rng.UniformRange(8, 600));
  conf.record.value_size = static_cast<size_t>(rng.UniformRange(0, 1200));
  conf.record.num_unique_keys = conf.num_reduces;
  conf.pattern = static_cast<DistributionPattern>(rng.Uniform(4));
  conf.zipf_exponent = rng.NextDouble() * 1.5;
  conf.record.type =
      rng.Bernoulli(0.5) ? DataType::kBytesWritable : DataType::kText;
  conf.scheduler =
      rng.Bernoulli(0.3) ? SchedulerKind::kYarn : SchedulerKind::kMrv1;
  conf.map_slots_per_node = static_cast<int>(rng.UniformRange(1, 6));
  conf.reduce_slots_per_node = static_cast<int>(rng.UniformRange(1, 4));
  conf.io_sort_bytes = rng.UniformRange(1, 64) * 1024 * 1024;
  conf.parallel_copies = static_cast<int>(rng.UniformRange(1, 10));
  conf.slowstart = rng.NextDouble();
  conf.compress_map_output = rng.Bernoulli(0.3);
  conf.combiner_output_fraction = rng.Bernoulli(0.3)
                                      ? 0.1 + 0.9 * rng.NextDouble()
                                      : 1.0;
  conf.seed = rng.Next64();

  const std::vector<NetworkProfile> networks = AllNetworkProfiles();
  ClusterSpec spec = ClusterA(networks[rng.Uniform(networks.size())],
                              static_cast<int>(rng.UniformRange(1, 8)));
  out.spec = spec;
  return out;
}

class SimRunnerPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SimRunnerPropertyTest, InvariantsHold) {
  const RandomConfig config =
      DrawConfig(static_cast<uint64_t>(GetParam()) * 0x9e37);
  SimCluster cluster(config.spec);
  SimJobRunner runner(&cluster, config.conf);
  auto result = runner.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Time ordering.
  EXPECT_GE(result->finish_time, result->submit_time);
  EXPECT_GE(result->last_map_finish, result->first_map_start);
  EXPECT_GE(result->finish_time, result->last_map_finish);
  EXPECT_GT(result->job_seconds, 0);

  // Byte conservation: per-reduce loads sum to the shuffle total, and the
  // wire never carries more than the (possibly compressed) shuffle.
  const int64_t per_reduce_total =
      std::accumulate(result->reducer_bytes.begin(),
                      result->reducer_bytes.end(), int64_t{0});
  EXPECT_EQ(per_reduce_total, result->total_shuffle_bytes);
  EXPECT_LE(result->network_bytes,
            static_cast<double>(result->total_shuffle_bytes) + 1.0);

  // Task accounting: one record per task, all placed and finished.
  ASSERT_EQ(result->timeline.size(),
            static_cast<size_t>(config.conf.num_maps +
                                config.conf.num_reduces));
  for (const auto& task : result->timeline) {
    EXPECT_GE(task.node, 0);
    EXPECT_LT(task.node, config.spec.num_slaves);
    EXPECT_GE(task.finish_time, task.start_time);
    EXPECT_EQ(task.attempts, 1);  // no failures injected here
  }
  EXPECT_EQ(result->total_task_attempts,
            config.conf.num_maps + config.conf.num_reduces);

  // Load imbalance is max/mean >= 1 by construction.
  EXPECT_GE(result->load_imbalance, 1.0 - 1e-9);

  // Resource totals are non-negative and CPU was actually used.
  EXPECT_GE(result->disk_bytes, 0.0);
  if (config.conf.records_per_map > 0) {
    EXPECT_GT(result->cpu_busy_seconds, 0.0);
  }
}

TEST_P(SimRunnerPropertyTest, DeterministicAcrossRuns) {
  const RandomConfig config =
      DrawConfig(static_cast<uint64_t>(GetParam()) * 0x51ed);
  SimCluster cluster_a(config.spec);
  SimJobRunner runner_a(&cluster_a, config.conf);
  auto a = runner_a.Run();
  SimCluster cluster_b(config.spec);
  SimJobRunner runner_b(&cluster_b, config.conf);
  auto b = runner_b.Run();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->finish_time, b->finish_time);
  EXPECT_EQ(a->reducer_bytes, b->reducer_bytes);
  EXPECT_EQ(a->network_bytes, b->network_bytes);
}

TEST_P(SimRunnerPropertyTest, FasterNetworkNeverSlower) {
  RandomConfig config = DrawConfig(static_cast<uint64_t>(GetParam()) * 977);
  config.conf.records_per_map = std::max<int64_t>(
      config.conf.records_per_map, 5000);  // enough data to move
  auto time_on = [&](const NetworkProfile& network) {
    ClusterSpec spec = config.spec;
    spec.network = network;
    SimCluster cluster(spec);
    SimJobRunner runner(&cluster, config.conf);
    auto result = runner.Run();
    EXPECT_TRUE(result.ok());
    return result->job_seconds;
  };
  const double slow = time_on(OneGigE());
  const double fast = time_on(RdmaFdr());
  EXPECT_GE(slow, fast - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(RandomConfigs, SimRunnerPropertyTest,
                         ::testing::Range(1, 26));

}  // namespace
}  // namespace mrmb
