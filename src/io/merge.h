// Record streams and the reduce-side k-way merge.
//
// SegmentReader walks IFile-framed records (vint key length, vint value
// length, key, value) in a byte slice — the format KvBuffer spills and the
// shuffle moves. MergeIterator merges any number of individually-sorted
// streams into one sorted stream with a tournament loser tree, like
// Hadoop's Merger but with roughly half the comparisons of its PriorityQueue:
// advancing the winner replays exactly one root-to-leaf path (one comparison
// per level) instead of a binary-heap sift-down (up to two per level), and
// every leaf caches its stream's current key and 8-byte normalized prefix so
// most of those comparisons are a single uint64_t compare. GroupedIterator
// layers reduce-style grouping (one (key, values[]) group per distinct key)
// on top of a sorted stream.

#ifndef MRMB_IO_MERGE_H_
#define MRMB_IO_MERGE_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "io/comparator.h"

namespace mrmb {

// Forward-only stream of (key, value) records in serialized form.
class RecordStream {
 public:
  virtual ~RecordStream() = default;

  // True while positioned on a record.
  virtual bool Valid() const = 0;
  // Current record; views are valid until Next().
  virtual std::string_view key() const = 0;
  virtual std::string_view value() const = 0;
  // Advances to the next record.
  virtual void Next() = 0;
  // OK while the stream ended cleanly (or has not ended); a DataLoss-style
  // error when it stopped because the underlying bytes were malformed.
  // Callers that care about integrity must check this once Valid() turns
  // false.
  virtual Status status() const { return Status::OK(); }
  // True when key()/value() views stay valid across Next() for the stream's
  // whole lifetime (records decoded in place out of stable storage).
  // Consumers may then hold a key across an advance without copying it.
  virtual bool stable_views() const { return false; }
};

// Streams framed records out of a byte slice. The slice must outlive the
// reader. Malformed framing does not abort: the reader becomes invalid and
// status() carries a DataLoss error, so a corrupted shuffle segment is a
// recoverable condition for the task-attempt engine, not a crash.
//
// The two-argument form additionally validates each key's wire format
// against `key_type` (see KeyWireFormatValid). A bit flip in a length
// varint can re-frame the stream into records whose keys are garbage of
// the wrong shape; without this check those keys would reach the key-
// prefix and comparator code, whose preconditions they violate. Readers
// fed from untrusted bytes (anything that crossed the simulated shuffle)
// must use this form.
class SegmentReader final : public RecordStream {
 public:
  explicit SegmentReader(std::string_view data);
  SegmentReader(std::string_view data, DataType key_type);

  bool Valid() const override { return valid_; }
  std::string_view key() const override { return key_; }
  std::string_view value() const override { return value_; }
  void Next() override;
  Status status() const override { return status_; }
  // Records are views into the caller's slice, never re-buffered.
  bool stable_views() const override { return true; }

 private:
  void Decode();

  std::string_view data_;
  size_t pos_ = 0;
  bool valid_ = false;
  bool validate_keys_ = false;
  DataType key_type_ = DataType::kBytesWritable;
  std::string_view key_;
  std::string_view value_;
  Status status_;
};

// Merges sorted input streams into one sorted stream (loser tree).
class MergeIterator final : public RecordStream {
 public:
  MergeIterator(std::vector<std::unique_ptr<RecordStream>> inputs,
                const RawComparator* comparator);

  bool Valid() const override {
    return winner_ >= 0 && leaves_[static_cast<size_t>(winner_)].valid;
  }
  std::string_view key() const override;
  std::string_view value() const override;
  void Next() override;
  // First non-OK status of any input stream (an exhausted corrupt input
  // turns into an infinite-key leaf; this is how the corruption surfaces).
  Status status() const override;
  // Stable iff every input has stable views: the merge hands out the
  // winning leaf's views untouched.
  bool stable_views() const override { return stable_views_; }

 private:
  // One tournament contestant: a stream plus its cached current key and
  // normalized prefix. Exhausted streams stay in the tree and compare as
  // +infinity, so the tree shape never changes mid-merge.
  struct Leaf {
    RecordStream* stream = nullptr;
    std::string_view key;
    uint64_t prefix = 0;
    bool valid = false;
  };

  // True if leaf `a` wins (sorts before) leaf `b`; ties break on the lower
  // input index for determinism.
  bool Beats(int32_t a, int32_t b) const;
  // Re-caches leaf state after its stream advanced (or at construction).
  void RefreshLeaf(int32_t leaf);
  // Builds the loser tree under internal node `node`; returns the subtree's
  // winner and fills losers_ along the way.
  int32_t InitSubtree(size_t node);
  // Replays leaf `leaf`'s root path after its key changed.
  void Replay(int32_t leaf);

  std::vector<std::unique_ptr<RecordStream>> inputs_;
  const RawComparator* comparator_;
  DataType key_type_;
  bool prefix_decisive_;
  std::vector<Leaf> leaves_;     // k contestants
  std::vector<int32_t> losers_;  // internal nodes 1..k-1 (index 0 unused)
  int32_t winner_ = -1;
  bool stable_views_ = true;
};

// Iterates groups of equal keys over a sorted stream. Usage:
//   GroupedIterator groups(&stream, comparator);
//   while (groups.NextGroup()) {
//     use groups.group_key();
//     while (groups.NextValue()) use groups.value();
//   }
class GroupedIterator {
 public:
  GroupedIterator(RecordStream* stream, const RawComparator* comparator);

  // Advances to the next distinct key. Returns false when exhausted. Any
  // unconsumed values of the previous group are skipped.
  bool NextGroup();
  // The current group's key (serialized form).
  std::string_view group_key() const { return group_key_; }
  // Advances to the next value within the group; false at group end.
  bool NextValue();
  std::string_view value() const { return stream_->value(); }

 private:
  // Ensures group_key_ survives the next stream advance. A no-op for
  // streams with stable views (the common reduce path: a MergeIterator over
  // SegmentReaders), so those groups never copy the key; unstable streams
  // copy into owned_key_ at most once per group, and only for groups that
  // actually span more than one record.
  void PinGroupKey();

  RecordStream* stream_;
  const RawComparator* comparator_;
  const bool stable_views_;
  std::string_view group_key_;
  std::string owned_key_;  // fallback storage when views are unstable
  bool pinned_ = false;
  bool in_group_ = false;
  bool first_value_pending_ = false;
};

}  // namespace mrmb

#endif  // MRMB_IO_MERGE_H_
