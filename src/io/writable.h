// Hadoop-compatible Writable value types.
//
// The suite supports the data types the paper exercises (BytesWritable,
// Text) plus the common numeric Writables, with wire formats matching
// Hadoop's:
//   BytesWritable : 4-byte big-endian length + raw bytes
//   Text          : Hadoop vint byte length + UTF-8 bytes
//   IntWritable   : 4-byte big-endian two's complement
//   LongWritable  : 8-byte big-endian two's complement
//   NullWritable  : zero bytes
//
// Raw comparators (comparator.h) order the *serialized* forms consistently
// with comparing deserialized values, which the map-side sort relies on.

#ifndef MRMB_IO_WRITABLE_H_
#define MRMB_IO_WRITABLE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "io/byte_buffer.h"

namespace mrmb {

// Identifies the wire format of keys/values flowing through a job.
enum class DataType {
  kBytesWritable,
  kText,
  kIntWritable,
  kLongWritable,
  kNullWritable,
};

const char* DataTypeName(DataType type);
Result<DataType> DataTypeByName(const std::string& name);

// Abstract serializable value (mirrors org.apache.hadoop.io.Writable).
class Writable {
 public:
  virtual ~Writable() = default;

  // Appends this value's wire form to `writer`.
  virtual void Serialize(BufferWriter* writer) const = 0;
  // Replaces this value by decoding from `reader`.
  virtual Status Deserialize(BufferReader* reader) = 0;
  virtual DataType type() const = 0;
};

// Raw byte payload, like org.apache.hadoop.io.BytesWritable.
class BytesWritable final : public Writable {
 public:
  BytesWritable() = default;
  explicit BytesWritable(std::string bytes) : bytes_(std::move(bytes)) {}

  void Serialize(BufferWriter* writer) const override;
  Status Deserialize(BufferReader* reader) override;
  DataType type() const override { return DataType::kBytesWritable; }

  const std::string& bytes() const { return bytes_; }
  void set_bytes(std::string bytes) { bytes_ = std::move(bytes); }

  // Serialized size of a payload of `payload_len` bytes.
  static size_t SerializedSize(size_t payload_len) { return payload_len + 4; }

  bool operator==(const BytesWritable& other) const {
    return bytes_ == other.bytes_;
  }
  bool operator<(const BytesWritable& other) const {
    return bytes_ < other.bytes_;
  }

 private:
  std::string bytes_;
};

// UTF-8 text, like org.apache.hadoop.io.Text.
class Text final : public Writable {
 public:
  Text() = default;
  explicit Text(std::string value) : value_(std::move(value)) {}

  void Serialize(BufferWriter* writer) const override;
  Status Deserialize(BufferReader* reader) override;
  DataType type() const override { return DataType::kText; }

  const std::string& value() const { return value_; }
  void set_value(std::string value) { value_ = std::move(value); }

  static size_t SerializedSize(size_t payload_len) {
    return payload_len + VarintLength(static_cast<int64_t>(payload_len));
  }

  bool operator==(const Text& other) const { return value_ == other.value_; }
  bool operator<(const Text& other) const { return value_ < other.value_; }

 private:
  std::string value_;
};

class IntWritable final : public Writable {
 public:
  IntWritable() = default;
  explicit IntWritable(int32_t value) : value_(value) {}

  void Serialize(BufferWriter* writer) const override;
  Status Deserialize(BufferReader* reader) override;
  DataType type() const override { return DataType::kIntWritable; }

  int32_t value() const { return value_; }
  void set_value(int32_t value) { value_ = value; }

  bool operator==(const IntWritable& other) const {
    return value_ == other.value_;
  }
  bool operator<(const IntWritable& other) const {
    return value_ < other.value_;
  }

 private:
  int32_t value_ = 0;
};

class LongWritable final : public Writable {
 public:
  LongWritable() = default;
  explicit LongWritable(int64_t value) : value_(value) {}

  void Serialize(BufferWriter* writer) const override;
  Status Deserialize(BufferReader* reader) override;
  DataType type() const override { return DataType::kLongWritable; }

  int64_t value() const { return value_; }
  void set_value(int64_t value) { value_ = value; }

  bool operator==(const LongWritable& other) const {
    return value_ == other.value_;
  }
  bool operator<(const LongWritable& other) const {
    return value_ < other.value_;
  }

 private:
  int64_t value_ = 0;
};

// Zero-byte placeholder, like org.apache.hadoop.io.NullWritable.
class NullWritable final : public Writable {
 public:
  void Serialize(BufferWriter* writer) const override;
  Status Deserialize(BufferReader* reader) override;
  DataType type() const override { return DataType::kNullWritable; }

  bool operator==(const NullWritable&) const { return true; }
  bool operator<(const NullWritable&) const { return false; }
};

// Serialized size of one record payload of `payload_len` bytes under
// `type`'s framing (kNullWritable ignores payload_len and is 0;
// fixed-width numeric types ignore it too).
size_t SerializedSizeFor(DataType type, size_t payload_len);

}  // namespace mrmb

#endif  // MRMB_IO_WRITABLE_H_
