#include "cluster/cluster_spec.h"

namespace mrmb {

ClusterSpec ClusterA(const NetworkProfile& network, int num_slaves) {
  ClusterSpec spec;
  spec.name = "ClusterA(Westmere)";
  spec.num_slaves = num_slaves;
  spec.node.cores = 8;  // Dual quad-core Xeon @ 2.67 GHz.
  spec.node.core_speed = 1.0;
  // Two 1 TB HDDs; ~90 MB/s of effective sequential bandwidth each under
  // mixed spill/merge traffic.
  spec.node.disk_bandwidth_Bps = 180.0 * 1024 * 1024;
  spec.node.disk_seek = 4 * kMillisecond;
  spec.node.memory_bytes = 24LL * 1024 * 1024 * 1024;
  spec.network = network;
  return spec;
}

ClusterSpec ClusterB(const NetworkProfile& network, int num_slaves) {
  ClusterSpec spec;
  spec.name = "ClusterB(Stampede)";
  spec.num_slaves = num_slaves;
  spec.node.cores = 16;  // Dual octa-core Sandy Bridge @ 2.7 GHz.
  spec.node.core_speed = 1.15;
  // Single 80 GB HDD.
  spec.node.disk_bandwidth_Bps = 90.0 * 1024 * 1024;
  spec.node.disk_seek = 4 * kMillisecond;
  spec.node.memory_bytes = 32LL * 1024 * 1024 * 1024;
  spec.network = network;
  return spec;
}

}  // namespace mrmb
