file(REMOVE_RECURSE
  "CMakeFiles/fig4_kv_sizes.dir/fig4_kv_sizes.cc.o"
  "CMakeFiles/fig4_kv_sizes.dir/fig4_kv_sizes.cc.o.d"
  "fig4_kv_sizes"
  "fig4_kv_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_kv_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
