file(REMOVE_RECURSE
  "CMakeFiles/mrmb_core.dir/benchmark.cc.o"
  "CMakeFiles/mrmb_core.dir/benchmark.cc.o.d"
  "CMakeFiles/mrmb_core.dir/flags.cc.o"
  "CMakeFiles/mrmb_core.dir/flags.cc.o.d"
  "CMakeFiles/mrmb_core.dir/report.cc.o"
  "CMakeFiles/mrmb_core.dir/report.cc.o.d"
  "CMakeFiles/mrmb_core.dir/suite_spec.cc.o"
  "CMakeFiles/mrmb_core.dir/suite_spec.cc.o.d"
  "libmrmb_core.a"
  "libmrmb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrmb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
