#include "mapred/local_runner.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "dfs/output_committer.h"
#include "io/block_codec.h"
#include "io/byte_buffer.h"
#include "io/checksum.h"
#include "io/merge.h"
#include "io/spill_store.h"
#include "mapred/fault_injector.h"
#include "mapred/job_journal.h"
#include "mapred/map_output.h"
#include "mapred/node_combiner.h"
#include "mapred/null_formats.h"
#include "mapred/partitioner.h"
#include "net/shuffle_transport.h"
#include "rpc/shuffle_wire.h"

namespace mrmb {

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

// Pool lanes. Shuffle events (fetch verification, background merges, final
// reduce runs) outrank queued map attempts so a committed output is
// consumed while the remaining maps run; nothing already running is ever
// preempted, so map progress is only ever deferred by one short event.
constexpr int kMapLane = 0;
constexpr int kShuffleLane = 1;

// Fetch attempts over the tcp transport before declaring the output lost.
// Transport failures are transient by nature (dropped connection, torn
// frame); CRC mismatches skip the retries — re-reading corrupt bytes cannot
// fix them.
constexpr int kTransportFetchAttempts = 3;

// Prepends attempt context to an error while keeping its code (so callers
// can still dispatch on kDataLoss / kDeadlineExceeded).
Status Annotate(const Status& status, const std::string& prefix) {
  return Status(status.code(), prefix + ": " + status.message());
}

// Cancels overdue attempts. Each attempt arms a deadline when it actually
// starts running (not when it is queued) and disarms it on completion; a
// single timer thread fires the earliest pending deadline by flipping the
// attempt's CancelToken. The attempt observes the token at its next
// cancellation point and bails out with DeadlineExceeded.
class Watchdog {
 public:
  // timeout_ms <= 0 disables the watchdog (Arm becomes a no-op).
  explicit Watchdog(int64_t timeout_ms) : timeout_ms_(timeout_ms) {
    if (timeout_ms_ > 0) thread_ = std::thread([this] { Loop(); });
  }

  ~Watchdog() {
    if (thread_.joinable()) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
      }
      cv_.notify_all();
      thread_.join();
    }
  }

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  // Schedules `token` for cancellation timeout_ms from now. Returns a
  // ticket for Disarm (0 when disabled). `token` must stay alive until
  // Disarm returns.
  int64_t Arm(CancelToken* token) {
    if (timeout_ms_ <= 0) return 0;
    std::lock_guard<std::mutex> lock(mutex_);
    const int64_t ticket = ++last_ticket_;
    entries_.push_back({ticket,
                        std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(timeout_ms_),
                        token});
    cv_.notify_all();
    return ticket;
  }

  void Disarm(int64_t ticket) {
    if (ticket == 0) return;
    std::lock_guard<std::mutex> lock(mutex_);
    std::erase_if(entries_,
                  [ticket](const Entry& e) { return e.ticket == ticket; });
  }

 private:
  struct Entry {
    int64_t ticket;
    std::chrono::steady_clock::time_point deadline;
    CancelToken* token;
  };

  void Loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!shutdown_) {
      const auto now = std::chrono::steady_clock::now();
      for (const Entry& e : entries_) {
        if (e.deadline <= now) e.token->Cancel();
      }
      std::erase_if(entries_,
                    [now](const Entry& e) { return e.deadline <= now; });
      if (entries_.empty()) {
        cv_.wait(lock);
        continue;
      }
      auto earliest = entries_.front().deadline;
      for (const Entry& e : entries_) earliest = std::min(earliest, e.deadline);
      cv_.wait_until(lock, earliest);
    }
  }

  const int64_t timeout_ms_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Entry> entries_;
  int64_t last_ticket_ = 0;
  bool shutdown_ = false;
  std::thread thread_;
};

// Per-stage combine accounting for one map attempt. Bytes are logical
// (decompressed) framed bytes; micros is wall time spent inside
// CombineSegment / CombineSortedRun, the map-side share of the
// combine_cpu_per_record calibration source.
struct MapCombineStats {
  int64_t spill_input_records = 0;
  int64_t spill_output_records = 0;
  int64_t spill_input_bytes = 0;
  int64_t spill_output_bytes = 0;
  int64_t merge_input_records = 0;
  int64_t merge_output_records = 0;
  int64_t merge_input_bytes = 0;
  int64_t merge_output_bytes = 0;
  int64_t combine_micros = 0;
};

// Map-side context: partitions each emitted record, collects into a bounded
// KvBuffer, spills sorted runs when full. Errors (oversized record,
// watchdog cancellation) stick in status(); once set, further Emits are
// no-ops and Finalize propagates the error.
//
// With the disk spill engine on (`store` non-null), sealed spills go to
// extent files once the attempt's resident spill bytes would exceed
// JobConf::spill_budget_bytes; admission control degrades an ENOSPC/EIO
// write back to RAM residency instead of failing the attempt. Residency
// decisions depend only on this attempt's own spill sizes, so the merged
// output — and every byte-level counter derived from committed attempts —
// stays deterministic for any thread count.
class LocalMapContext final : public MapContext {
 public:
  LocalMapContext(const JobConf& conf, int task_id, int attempt,
                  std::unique_ptr<Partitioner> partitioner,
                  std::unique_ptr<Reducer> combiner, CancelToken* cancel,
                  SpillStore* store)
      : conf_(conf),
        task_id_(task_id),
        attempt_(attempt),
        partitioner_(std::move(partitioner)),
        combiner_(std::move(combiner)),
        cancel_(cancel),
        store_(store),
        spill_budget_bytes_(conf.effective_spill_budget_bytes()),
        buffer_(conf.record.type, conf.num_reduces,
                static_cast<size_t>(
                    static_cast<double>(conf.io_sort_bytes) *
                    conf.spill_percent)) {
    // Partition sorts are independent, so each spill can fan them out over
    // a pool. The pool must be dedicated: attempts already run on the
    // runner's shared pool, and ThreadPool::Wait() waits for ALL submitted
    // tasks — nesting would deadlock. Byte output is identical either way.
    const int sort_threads =
        conf.sort_threads > 0 ? conf.sort_threads : conf.local_threads;
    if (sort_threads > 1) {
      sort_pool_ = std::make_unique<ThreadPool>(sort_threads);
    }
  }

  void Emit(std::string_view key, std::string_view value) override {
    if (!status_.ok()) return;
    if (cancel_ != nullptr && cancel_->cancelled()) {
      status_ = Status::DeadlineExceeded(
          StringPrintf("map task %d cancelled by watchdog after %lld emits",
                       task_id_, static_cast<long long>(emitted_)));
      return;
    }
    const int partition =
        partitioner_->Partition(key, emitted_, conf_.num_reduces);
    if (!buffer_.Append(partition, key, value)) {
      if (!buffer_.Fits(key, value)) {
        status_ = Status::ResourceExhausted(StringPrintf(
            "map task %d: record (key %zu B, value %zu B) can never fit the "
            "sort buffer (capacity %zu B = io_sort_bytes * spill_percent)",
            task_id_, key.size(), value.size(), buffer_.capacity()));
        return;
      }
      SpillBuffer();
      MRMB_CHECK(buffer_.Append(partition, key, value));
    }
    ++emitted_;
  }

  const JobConf& conf() const override { return conf_; }
  int task_id() const override { return task_id_; }
  const Status& status() const { return status_; }

  // Finishes the task: final spill + merge to a single sealed segment.
  Result<SpillSegment> Finalize() {
    MRMB_RETURN_IF_ERROR(status_);
    if (buffer_.records() > 0 || spills_.empty()) SpillBuffer();
    MRMB_RETURN_IF_ERROR(status_);  // SpillBuffer can fail a disk write
    if (spills_.size() == 1) {
      if (spills_[0].stored == nullptr) return std::move(spills_[0].resident);
      // Single disk-backed spill: rehydrate it verified — disk bytes are
      // untrusted, and a damaged extent must fail the attempt (a retry
      // reproduces the output), never feed the merge garbage.
      return spills_[0].stored->ReadSegment(/*verify=*/true);
    }
    // Multi-spill merge, partition by partition — the same per-partition
    // MergeFramedRuns + final seal MergeSegments performs, so the result is
    // byte-identical whether each input run sat in RAM or on disk.
    const RawComparator* comparator = ComparatorFor(conf_.record.type);
    // Merge-time combining (mapreduce.map.combine.minspills): when enough
    // spills fold into the final output, the combiner re-runs over each
    // merged key group — duplicates that straddled spill boundaries get
    // collapsed before a byte hits the wire.
    const bool merge_combine =
        combiner_ != nullptr && conf_.min_spills_for_combine > 0 &&
        spills_.size() >= static_cast<size_t>(conf_.min_spills_for_combine);
    const size_t num_partitions = SlotPartitions(spills_[0]).size();
    SpillSegment out;
    int64_t total_bytes = 0;
    for (const SpillSlot& slot : spills_) {
      total_bytes += slot.stored != nullptr ? slot.stored->logical_bytes()
                                            : slot.resident.total_bytes();
    }
    out.data.reserve(static_cast<size_t>(total_bytes));
    out.partitions.resize(num_partitions);
    for (size_t p = 0; p < num_partitions; ++p) {
      SpillSegment::PartitionRange& range = out.partitions[p];
      range.offset = static_cast<int64_t>(out.data.size());
      // Disk-sourced runs are owned strings (verified on read); resident
      // runs are zero-copy views, unverified exactly like the all-RAM path
      // (nothing can have corrupted them yet).
      std::vector<std::string> owned;
      owned.reserve(spills_.size());
      std::vector<FramedRun> runs;
      runs.reserve(spills_.size());
      for (const SpillSlot& slot : spills_) {
        if (slot.stored != nullptr) {
          Result<std::string> run = slot.stored->ReadPartition(
              static_cast<int>(p), /*verify_partition_crc=*/true);
          if (!run.ok()) {
            return Annotate(run.status(),
                            StringPrintf("map task %d attempt %d: reading "
                                         "spill back from disk",
                                         task_id_, attempt_));
          }
          owned.push_back(std::move(run).value());
          runs.push_back({owned.back(), -1});
        } else {
          runs.push_back(
              {slot.resident.PartitionData(static_cast<int>(p)), -1});
        }
      }
      MRMB_ASSIGN_OR_RETURN(MergedRun merged,
                            MergeFramedRuns(runs, comparator));
      if (merge_combine) {
        combine_.merge_input_records += merged.records;
        combine_.merge_input_bytes += static_cast<int64_t>(merged.data.size());
        const auto t0 = Clock::now();
        Result<MergedRun> combined = CombineSortedRun(
            merged.data, comparator, combiner_.get(), conf_, task_id_);
        combine_.combine_micros +=
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - t0)
                .count();
        if (!combined.ok()) {
          // The merged run came out of our own loser tree; malformed
          // framing here is a framework bug, not input damage.
          return Annotate(combined.status(),
                          StringPrintf("map task %d: merge-time combine",
                                       task_id_));
        }
        combine_removed_ += merged.records - combined->records;
        combine_.merge_output_records += combined->records;
        combine_.merge_output_bytes +=
            static_cast<int64_t>(combined->data.size());
        merged = std::move(combined).value();
      }
      out.data.append(merged.data);
      range.records = merged.records;
      range.length = static_cast<int64_t>(out.data.size()) - range.offset;
    }
    SealSegment(&out);
    return out;
  }

  int64_t emitted() const { return emitted_; }
  int64_t spill_count() const { return static_cast<int64_t>(spills_.size()); }
  int64_t combine_removed() const { return combine_removed_; }
  const MapCombineStats& combine_stats() const { return combine_; }
  int64_t spilled_bytes() const { return spilled_bytes_; }
  int64_t spill_extents() const { return spill_extents_; }
  int64_t spill_degradations() const { return spill_degradations_; }

 private:
  // One sealed spill, resident in RAM or parked in an extent file.
  struct SpillSlot {
    SpillSegment resident;  // valid iff stored == nullptr
    std::shared_ptr<const StoredSpill> stored;
  };

  static const std::vector<SpillSegment::PartitionRange>& SlotPartitions(
      const SpillSlot& slot) {
    return slot.stored != nullptr ? slot.stored->partitions()
                                  : slot.resident.partitions;
  }

  void SpillBuffer() {
    buffer_.Sort(sort_pool_.get());
    SpillSegment spill = buffer_.ToSpill();
    if (combiner_ != nullptr) {
      const int64_t before = spill.total_records();
      const int64_t before_bytes = spill.total_bytes();
      const auto t0 = Clock::now();
      spill = CombineSegment(spill, ComparatorFor(conf_.record.type),
                             combiner_.get(), conf_, task_id_);
      combine_.combine_micros +=
          std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                t0)
              .count();
      combine_.spill_input_records += before;
      combine_.spill_input_bytes += before_bytes;
      combine_.spill_output_records += spill.total_records();
      combine_.spill_output_bytes += spill.total_bytes();
      combine_removed_ += before - spill.total_records();
    }
    buffer_.Clear();
    const int64_t bytes = spill.total_bytes();
    if (store_ != nullptr && resident_spill_bytes_ + bytes >
                                 spill_budget_bytes_) {
      Result<std::shared_ptr<const StoredSpill>> stored =
          store_->Put(spill, task_id_, attempt_);
      if (stored.ok()) {
        spilled_bytes_ += (*stored)->file_bytes();
        ++spill_extents_;
        spills_.push_back({SpillSegment(), std::move(stored).value()});
        return;
      }
      const StatusCode code = stored.status().code();
      if (code != StatusCode::kResourceExhausted &&
          code != StatusCode::kIOError) {
        // Post-seal scrub found unrepairable damage: fail the attempt so
        // the retry regenerates the bytes.
        status_ = Annotate(
            stored.status(),
            StringPrintf("map task %d attempt %d: spilling to disk",
                         task_id_, attempt_));
        return;
      }
      // ENOSPC/EIO: degrade this spill to RAM residency and carry on —
      // a full disk shrinks the effective budget, it doesn't kill work.
      ++spill_degradations_;
    }
    resident_spill_bytes_ += bytes;
    spills_.push_back({std::move(spill), nullptr});
  }

  const JobConf& conf_;
  int task_id_;
  int attempt_;
  std::unique_ptr<Partitioner> partitioner_;
  std::unique_ptr<Reducer> combiner_;
  CancelToken* cancel_;
  SpillStore* store_;  // null => all spills stay resident
  const int64_t spill_budget_bytes_;
  std::unique_ptr<ThreadPool> sort_pool_;  // null => sort inline
  KvBuffer buffer_;
  std::vector<SpillSlot> spills_;
  int64_t emitted_ = 0;
  int64_t combine_removed_ = 0;
  MapCombineStats combine_;
  int64_t resident_spill_bytes_ = 0;
  int64_t spilled_bytes_ = 0;
  int64_t spill_extents_ = 0;
  int64_t spill_degradations_ = 0;
  Status status_;
};

// Reduce-side context that stages output in memory instead of writing it.
// The coordinator commits staged records to the real OutputFormat in task
// order once the attempt has fully succeeded, so failed attempts never leave
// partial output behind and results are identical for any thread count.
class StagedReduceContext final : public ReduceContext {
 public:
  StagedReduceContext(const JobConf& conf, int task_id, CancelToken* cancel)
      : conf_(conf), task_id_(task_id), cancel_(cancel) {}

  void Emit(std::string_view key, std::string_view value) override {
    if (!status_.ok()) return;
    if (cancel_ != nullptr && cancel_->cancelled()) {
      status_ = Status::DeadlineExceeded(StringPrintf(
          "reduce task %d cancelled by watchdog after %zu emits", task_id_,
          staged_.size()));
      return;
    }
    staged_.emplace_back(std::string(key), std::string(value));
  }

  const JobConf& conf() const override { return conf_; }
  int task_id() const override { return task_id_; }
  const Status& status() const { return status_; }

  std::vector<std::pair<std::string, std::string>> TakeOutput() {
    return std::move(staged_);
  }

 private:
  const JobConf& conf_;
  int task_id_;
  CancelToken* cancel_;
  std::vector<std::pair<std::string, std::string>> staged_;
  Status status_;
};

class GroupValues final : public ValueIterator {
 public:
  explicit GroupValues(GroupedIterator* groups) : groups_(groups) {}
  bool Next() override { return groups_->NextValue(); }
  std::string_view value() const override { return groups_->value(); }

 private:
  GroupedIterator* groups_;
};

// Stats of one committed (successful) map attempt. Failed attempts may have
// processed a timing-dependent prefix of their input, so their numbers are
// discarded — only committed attempts feed LocalJobResult, which keeps the
// counters deterministic.
struct MapTaskStats {
  int64_t input_records = 0;
  int64_t output_records = 0;
  int64_t spill_count = 0;
  int64_t combine_removed = 0;
  int64_t output_bytes = 0;  // logical (uncompressed) framed bytes
  int64_t wire_bytes = 0;    // bytes as published (codec frames when on)
  // Disk spill engine, this attempt only: physical extent bytes written,
  // extent count (spills + final output), and writes that degraded to RAM
  // residency on ENOSPC/EIO.
  int64_t spilled_bytes = 0;
  int64_t spill_extents = 0;
  int64_t spill_degradations = 0;
  // Per-stage combine accounting (zeros without a combiner).
  MapCombineStats combine;
};

struct MapAttemptOutcome {
  Status status;        // OK iff the output and `stats` are valid
  SpillSegment output;  // sealed (and possibly fault-corrupted) map output
  // Disk-backed final output; when set, `output` is empty and fetches read
  // partitions back through the spill store's verify/repair path.
  std::shared_ptr<const StoredSpill> stored_output;
  MapTaskStats stats;
};

struct ReduceTaskOutcome {
  std::vector<std::pair<std::string, std::string>> output;
  int64_t groups = 0;
};

struct ReduceAttemptOutcome {
  Status status;  // OK iff `committed` is valid
  // Shuffle streams whose partition turned out malformed mid-merge;
  // non-empty only with a kDataLoss status. The scheduler re-executes the
  // producing maps, re-fetches, and re-runs the reduce without charging
  // its failure budget.
  std::vector<int> corrupt_streams;
  ReduceTaskOutcome committed;
};

// ---- Crash-safety helpers ------------------------------------------------

JournalMapStats ToJournalStats(const MapTaskStats& stats) {
  JournalMapStats out;
  out.input_records = stats.input_records;
  out.output_records = stats.output_records;
  out.spill_count = stats.spill_count;
  out.combine_removed = stats.combine_removed;
  out.output_bytes = stats.output_bytes;
  out.wire_bytes = stats.wire_bytes;
  out.spilled_bytes = stats.spilled_bytes;
  out.spill_extents = stats.spill_extents;
  out.spill_degradations = stats.spill_degradations;
  out.combine_spill_input_records = stats.combine.spill_input_records;
  out.combine_spill_output_records = stats.combine.spill_output_records;
  out.combine_spill_input_bytes = stats.combine.spill_input_bytes;
  out.combine_spill_output_bytes = stats.combine.spill_output_bytes;
  out.combine_merge_input_records = stats.combine.merge_input_records;
  out.combine_merge_output_records = stats.combine.merge_output_records;
  out.combine_merge_input_bytes = stats.combine.merge_input_bytes;
  out.combine_merge_output_bytes = stats.combine.merge_output_bytes;
  out.combine_micros = stats.combine.combine_micros;
  return out;
}

MapTaskStats FromJournalStats(const JournalMapStats& stats) {
  MapTaskStats out;
  out.input_records = stats.input_records;
  out.output_records = stats.output_records;
  out.spill_count = stats.spill_count;
  out.combine_removed = stats.combine_removed;
  out.output_bytes = stats.output_bytes;
  out.wire_bytes = stats.wire_bytes;
  out.spilled_bytes = stats.spilled_bytes;
  out.spill_extents = stats.spill_extents;
  out.spill_degradations = stats.spill_degradations;
  out.combine.spill_input_records = stats.combine_spill_input_records;
  out.combine.spill_output_records = stats.combine_spill_output_records;
  out.combine.spill_input_bytes = stats.combine_spill_input_bytes;
  out.combine.spill_output_bytes = stats.combine_spill_output_bytes;
  out.combine.merge_input_records = stats.combine_merge_input_records;
  out.combine.merge_output_records = stats.combine_merge_output_records;
  out.combine.merge_input_bytes = stats.combine_merge_input_bytes;
  out.combine.merge_output_bytes = stats.combine_merge_output_bytes;
  out.combine.combine_micros = stats.combine_micros;
  return out;
}

std::string Basename(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

// A committed reduce's output is preserved as a part file so a resumed run
// can re-emit it without re-running the task:
//
//   [fixed64 pair_count]
//   ([varint key_len][key][varint value_len][value])*
//   [fixed32 crc32c(everything before)]
std::string EncodeReducePart(
    const std::vector<std::pair<std::string, std::string>>& pairs,
    uint32_t* crc) {
  std::string blob;
  BufferWriter writer(&blob);
  writer.AppendFixed64(static_cast<uint64_t>(pairs.size()));
  for (const auto& [key, value] : pairs) {
    writer.AppendVarint64(static_cast<int64_t>(key.size()));
    writer.AppendRaw(key);
    writer.AppendVarint64(static_cast<int64_t>(value.size()));
    writer.AppendRaw(value);
  }
  *crc = Crc32c(blob);
  writer.AppendFixed32(*crc);
  return blob;
}

Status WriteFileDurable(const std::string& path, const std::string& blob) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError(
        StringPrintf("open %s: %s", path.c_str(), std::strerror(errno)));
  }
  size_t off = 0;
  while (off < blob.size()) {
    const ssize_t n = ::write(fd, blob.data() + off, blob.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = Status::IOError(
          StringPrintf("write %s: %s", path.c_str(), std::strerror(errno)));
      ::close(fd);
      return status;
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const Status status = Status::IOError(
        StringPrintf("fsync %s: %s", path.c_str(), std::strerror(errno)));
    ::close(fd);
    return status;
  }
  ::close(fd);
  return Status::OK();
}

// Loads a committed part file back, verifying it against both its own
// trailing checksum and the journal's reduce-commit record. Any mismatch is
// DataLoss: the caller drops the file and re-runs the reduce instead of
// trusting damaged output.
Result<std::vector<std::pair<std::string, std::string>>> LoadReducePart(
    const std::string& path, const JournalReduceCommit& commit) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("no part file at " + path);
  std::string blob((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (static_cast<int64_t>(blob.size()) != commit.part_bytes ||
      blob.size() < sizeof(uint64_t) + sizeof(uint32_t)) {
    return Status::DataLoss(StringPrintf(
        "part file %s: %zu bytes, journal recorded %lld", path.c_str(),
        blob.size(), static_cast<long long>(commit.part_bytes)));
  }
  const std::string_view body(blob.data(), blob.size() - sizeof(uint32_t));
  uint32_t stored_crc = 0;
  {
    BufferReader tail(
        std::string_view(blob).substr(blob.size() - sizeof(uint32_t)));
    MRMB_RETURN_IF_ERROR(tail.ReadFixed32(&stored_crc));
  }
  const uint32_t actual_crc = Crc32c(body);
  if (stored_crc != actual_crc || stored_crc != commit.part_crc) {
    return Status::DataLoss(StringPrintf(
        "part file %s: crc %08x (stored %08x, journal %08x)", path.c_str(),
        actual_crc, stored_crc, commit.part_crc));
  }
  BufferReader reader(body);
  uint64_t count = 0;
  MRMB_RETURN_IF_ERROR(reader.ReadFixed64(&count));
  if (count != static_cast<uint64_t>(commit.output_records)) {
    return Status::DataLoss(StringPrintf(
        "part file %s: %llu pairs, journal recorded %lld", path.c_str(),
        static_cast<unsigned long long>(count),
        static_cast<long long>(commit.output_records)));
  }
  std::vector<std::pair<std::string, std::string>> pairs;
  pairs.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    int64_t key_len = 0;
    int64_t value_len = 0;
    std::string_view key;
    std::string_view value;
    MRMB_RETURN_IF_ERROR(reader.ReadVarint64(&key_len));
    if (key_len < 0) return Status::DataLoss("part file " + path);
    MRMB_RETURN_IF_ERROR(reader.ReadRaw(static_cast<size_t>(key_len), &key));
    MRMB_RETURN_IF_ERROR(reader.ReadVarint64(&value_len));
    if (value_len < 0) return Status::DataLoss("part file " + path);
    MRMB_RETURN_IF_ERROR(
        reader.ReadRaw(static_cast<size_t>(value_len), &value));
    pairs.emplace_back(std::string(key), std::string(value));
  }
  if (!reader.AtEnd()) {
    return Status::DataLoss("part file " + path + ": trailing bytes");
  }
  return pairs;
}

MapAttemptOutcome RunMapAttempt(const JobConf& conf, int task, int attempt,
                                InputFormat* input_format,
                                const InputSplit& split,
                                const MapperFactory& mapper_factory,
                                const PartitionerFactory& partitioner_factory,
                                const ReducerFactory& combiner_factory,
                                const LocalFaultInjector& injector,
                                SpillStore* store, CancelToken* cancel) {
  MapAttemptOutcome outcome;
  const int64_t delay = injector.MapDelayMs(task, attempt);
  if (delay > 0 && !cancel->SleepFor(delay)) {
    outcome.status = Status::DeadlineExceeded(StringPrintf(
        "map task %d attempt %d cancelled during injected %lld ms stall",
        task, attempt, static_cast<long long>(delay)));
    return outcome;
  }
  if (injector.ShouldFailMap(task, attempt)) {
    outcome.status = Status::Internal(StringPrintf(
        "injected failure of map task %d attempt %d", task, attempt));
    return outcome;
  }

  std::unique_ptr<RecordReader> reader = input_format->CreateReader(conf, split);
  std::unique_ptr<Mapper> mapper = mapper_factory(task);
  // The partitioner seed depends on the task only, never the attempt: a
  // re-executed map must reproduce its output byte for byte, or recovery
  // would change the answer.
  std::unique_ptr<Partitioner> partitioner =
      partitioner_factory != nullptr
          ? partitioner_factory(task)
          : MakePartitioner(conf.pattern,
                            conf.seed + static_cast<uint64_t>(task) * 7919,
                            conf.records_per_map, conf.zipf_exponent);
  LocalMapContext context(
      conf, task, attempt, std::move(partitioner),
      combiner_factory != nullptr ? combiner_factory(task) : nullptr, cancel,
      store);
  std::string key;
  std::string value;
  while (context.status().ok() && reader->Next(&key, &value)) {
    ++outcome.stats.input_records;
    mapper->Map(key, value, &context);
  }
  Result<SpillSegment> segment = context.Finalize();
  if (!segment.ok()) {
    outcome.status = segment.status();
    return outcome;
  }
  outcome.output = std::move(segment).value();
  outcome.stats.output_bytes = outcome.output.total_bytes();
  // With a codec selected, every sealed partition is re-framed into one
  // compressed block whose CRC covers the on-wire bytes; reducers verify
  // and (simulated-)transfer only the compressed form.
  const MapOutputCodec codec = conf.effective_map_output_codec();
  if (codec != MapOutputCodec::kNone) {
    Result<SpillSegment> wire = CompressSegment(codec, outcome.output);
    if (!wire.ok()) {
      outcome.status = Annotate(
          wire.status(),
          StringPrintf("map task %d: compressing map output", task));
      return outcome;
    }
    outcome.output = std::move(wire).value();
  }
  outcome.stats.wire_bytes = outcome.output.total_bytes();
  // Inject any scheduled bit flips *after* sealing, so the stored CRCs
  // describe the pristine bytes and the flip is detectable downstream.
  injector.MaybeCorruptMapOutput(task, attempt, &outcome.output);
  outcome.stats.output_records = context.emitted();
  outcome.stats.spill_count = context.spill_count();
  outcome.stats.combine_removed = context.combine_removed();
  outcome.stats.combine = context.combine_stats();
  outcome.stats.spilled_bytes = context.spilled_bytes();
  outcome.stats.spill_extents = context.spill_extents();
  outcome.stats.spill_degradations = context.spill_degradations();
  if (store != nullptr) {
    // With the disk engine on, the final output lives on disk too; fetches
    // read partitions back through the store's verify/repair path. ENOSPC
    // and EIO degrade to RAM residency (the segment simply stays in
    // `output`) rather than failing the attempt; anything else — notably
    // DataLoss from a write-time scrub — burns this attempt and retries.
    Result<std::shared_ptr<const StoredSpill>> put =
        store->Put(outcome.output, task, attempt);
    if (put.ok()) {
      outcome.stored_output = std::move(put).value();
      outcome.stats.spilled_bytes += outcome.stored_output->file_bytes();
      outcome.stats.spill_extents += 1;
      outcome.output = SpillSegment();
    } else if (put.status().code() == StatusCode::kResourceExhausted ||
               put.status().code() == StatusCode::kIOError) {
      outcome.stats.spill_degradations += 1;
    } else {
      outcome.status =
          Annotate(put.status(),
                   StringPrintf("map task %d attempt %d: storing final output",
                                task, attempt));
      return outcome;
    }
  }
  return outcome;
}

// ---- Static merge plan -------------------------------------------------
//
// Hadoop's MergeManager folds fetched segments whenever memory pressure
// says so, which makes the set of streams in each fold — and therefore the
// order of equal keys — depend on arrival timing. We bound the final
// fan-in the same way but pick the folds statically: a pure function of
// (num_leaves, merge_factor) that groups *consecutive* leaf ids, level by
// level, until at most merge_factor streams remain. Contiguous ascending
// spans plus the merge's input-index tie-break mean equal keys always come
// out in ascending leaf-id order, exactly like one flat merge over all
// leaves — so job output is byte-identical no matter when segments
// arrived. A leaf is one shuffle stream: a single map's output, or — with
// in-node combining — one node-combined block of consecutive maps, whose
// own internal merge preserved exactly the same ascending order.

// Exactly one of `node` / `leaf` is >= 0: a reference to an intermediate
// merge's output or to one raw fetched shuffle-stream partition.
struct StreamRef {
  int node = -1;
  int leaf = -1;
};

struct PlanNode {
  std::vector<StreamRef> children;
  int leaf_begin = 0;  // leaf span [leaf_begin, leaf_end) this node covers
  int leaf_end = 0;
};

struct MergePlan {
  std::vector<PlanNode> nodes;           // children always precede parents
  std::vector<StreamRef> final_streams;  // ascending leaf-span order
};

MergePlan BuildMergePlan(int num_leaves, int merge_factor) {
  MergePlan plan;
  std::vector<StreamRef> level(static_cast<size_t>(num_leaves));
  for (int m = 0; m < num_leaves; ++m) level[static_cast<size_t>(m)].leaf = m;
  const auto span_of = [&plan](const StreamRef& s) -> std::pair<int, int> {
    if (s.leaf >= 0) return {s.leaf, s.leaf + 1};
    const PlanNode& node = plan.nodes[static_cast<size_t>(s.node)];
    return {node.leaf_begin, node.leaf_end};
  };
  while (static_cast<int>(level.size()) > merge_factor) {
    std::vector<StreamRef> next;
    for (size_t i = 0; i < level.size(); i += static_cast<size_t>(merge_factor)) {
      const size_t end =
          std::min(level.size(), i + static_cast<size_t>(merge_factor));
      if (end - i == 1) {
        next.push_back(level[i]);  // singleton passes through unfolded
        continue;
      }
      PlanNode node;
      node.children.assign(level.begin() + static_cast<int64_t>(i),
                           level.begin() + static_cast<int64_t>(end));
      node.leaf_begin = span_of(node.children.front()).first;
      node.leaf_end = span_of(node.children.back()).second;
      plan.nodes.push_back(std::move(node));
      StreamRef ref;
      ref.node = static_cast<int>(plan.nodes.size()) - 1;
      next.push_back(ref);
    }
    level = std::move(next);
  }
  plan.final_streams = std::move(level);
  return plan;
}

// ---- Pipelined shuffle scheduler ----------------------------------------
//
// Event-driven execution modelled on Hadoop's ShuffleScheduler +
// MergeManager:
//
//   map commit --publish(gen)--> per-reduce fetch queues --> drain events
//     (verify CRC once per (stream, gen), zero-copy view into the sealed
//      segment, fold ready merge-plan nodes) --> all inputs current
//     --> final task (bounded-fan-in merge + reduce function).
//
// Reducers launch once `reduce_slowstart` of the maps committed; fetch and
// background-merge work rides the shuffle lane so it interleaves with the
// remaining map attempts. Generations keep the fault semantics: a fetch
// that fails verification declares the output lost, bumps the stream's
// target generation and re-executes its producer(s) inline; reduces that
// already fetched the stale generation drop it when the fresh commit's
// event arrives (the shared_ptr keeps old bytes alive for reduces that
// already consumed them — re-executed output is byte-identical anyway, by
// the determinism contract).
//
// In-node combining (node_combine_min_maps = k >= 2) inserts one stage
// between map commits and the shuffle: maps are grouped into fixed blocks
// of k consecutive task ids — a pure function of (num_maps, k), never of
// timing — and the shuffle serves one combined stream per block. When the
// last member of a block commits, the block's sealed segments are merged
// per partition, the combiner re-runs over each key group
// (BuildNodeCombinedSegment), and the re-sealed result is published under
// the block's stream id and generation. A lost stream re-executes every
// member and rebuilds; a member whose bytes turn out damaged at build time
// is re-executed alone, exactly like a failed reduce-side fetch. With k <
// 2 every stream is a single map and the plane is byte-for-byte the
// legacy one.
class PipelinedJob {
 public:
  PipelinedJob(const JobConf& conf, InputFormat* input_format,
               std::vector<InputSplit> splits,
               const MapperFactory& mapper_factory,
               const ReducerFactory& reducer_factory,
               const PartitionerFactory& partitioner_factory,
               const ReducerFactory& combiner_factory)
      : conf_(conf),
        input_format_(input_format),
        splits_(std::move(splits)),
        mapper_factory_(mapper_factory),
        reducer_factory_(reducer_factory),
        partitioner_factory_(partitioner_factory),
        combiner_factory_(combiner_factory),
        comparator_(ComparatorFor(conf.record.type)),
        injector_(conf.local_fault_plan, conf.seed),
        group_size_(conf.node_combine_min_maps >= 2
                        ? conf.node_combine_min_maps
                        : 1),
        num_streams_((conf.num_maps + group_size_ - 1) / group_size_),
        plan_(BuildMergePlan(num_streams_, conf.merge_factor)),
        pool_(conf.local_threads),
        watchdog_(conf.task_timeout_ms),
        slowstart_threshold_(static_cast<int>(std::ceil(
            conf.reduce_slowstart * static_cast<double>(conf.num_maps)))),
        slots_(static_cast<size_t>(conf.num_maps)),
        groups_(static_cast<size_t>(num_streams_)),
        reduces_(static_cast<size_t>(conf.num_reduces)) {
    for (ReduceShuffle& rs : reduces_) {
      rs.inputs.resize(static_cast<size_t>(num_streams_));
      rs.nodes.resize(plan_.nodes.size());
    }
    reduce_adopted_.assign(static_cast<size_t>(conf.num_reduces), 0);
  }

  Status Execute(OutputFormat* output_format, LocalJobResult* result);

  // Non-empty only after a successful journaled run: the extents directory,
  // safe to remove once the store (and every handle into it) is destroyed.
  const std::string& success_cleanup_dir() const {
    return success_cleanup_dir_;
  }

 private:
  // One fetched map output: a generation-stamped shared view of the sealed
  // segment (this reduce reads only its own partition slice of it). With a
  // codec active, the partition is decompressed exactly once when stored —
  // `view` is the merge-ready framed records either way, pointing into the
  // shared segment (codec off) or into `decompressed` (codec on).
  struct FetchedInput {
    std::shared_ptr<const SpillSegment> segment;
    int generation = -1;  // -1 = nothing fetched yet
    std::string decompressed;
    std::string_view view;
  };

  struct NodeState {
    bool done = false;
    MergedRun merged;
  };

  // Scheduler's view of one map task's published output. Exactly one of
  // `segment` (resident) / `stored` (disk extent) is set per committed
  // generation — an attempt that degraded on ENOSPC/EIO commits resident
  // even when the engine is on.
  struct MapSlot {
    std::shared_ptr<const SpillSegment> segment;  // latest committed output
    std::shared_ptr<const StoredSpill> stored;    // ... or its disk extent
    int committed_gen = -1;  // generation of the output; -1 = none yet
    int target_gen = 0;      // bumped when the output is declared lost
    bool initial_committed = false;
    int attempts_started = 0;
    MapTaskStats stats;
  };

  // What the shuffle actually serves for one stream. A singleton stream
  // aliases its member's MapSlot output under the member's generation; a
  // multi-member stream holds the node-combined segment under its own
  // generation counter (bumped whenever the combined content must change:
  // a member re-executed, or the combined bytes themselves were lost).
  struct GroupSlot {
    std::shared_ptr<const SpillSegment> segment;
    std::shared_ptr<const StoredSpill> stored;
    int committed_gen = -1;  // generation served; -1 = nothing published
    int target_gen = 0;      // bumped when the stream is declared lost
    bool building = false;   // a BuildGroup is in flight for this stream
  };

  // Fixed node-combine blocks: stream s covers maps [s*k, min((s+1)*k,
  // num_maps)) with k = group_size_. Pure functions of the conf, so the
  // grouping — and therefore every byte the shuffle serves — is identical
  // for any thread count or commit order.
  int StreamOf(int m) const { return m / group_size_; }
  int MemberBegin(int s) const { return s * group_size_; }
  int MemberEnd(int s) const {
    return std::min((s + 1) * group_size_, conf_.num_maps);
  }
  int GroupSizeOf(int s) const { return MemberEnd(s) - MemberBegin(s); }

  struct ReduceShuffle {
    // ---- guarded by mu_ ----
    std::deque<int> fetch_queue;  // committed stream ids to fetch
    bool drain_scheduled = false;
    bool final_scheduled = false;
    bool completed = false;
    int attempts_started = 0;
    int failures = 0;
    ReduceTaskOutcome committed;
    Clock::time_point final_start{};
    // ---- owned by the single scheduled drain/final task ----
    // (successive tasks are ordered through mu_ + the pool queue, so no
    //  two ever touch these concurrently)
    std::vector<FetchedInput> inputs;
    std::vector<NodeState> nodes;
    double drain_busy_seconds = 0;
  };

  bool JobFailed() {
    std::lock_guard<std::mutex> lock(mu_);
    return job_failed_;
  }

  void FailJobLocked(const Status& status) {
    if (job_failed_) return;
    job_failed_ = true;
    job_error_ = status;
    cv_.notify_all();
  }

  void FailJob(const Status& status) {
    std::lock_guard<std::mutex> lock(mu_);
    FailJobLocked(status);
  }

  // Fires a crash_at point: the `occurrence`-th journal append of `event`
  // just became durable, so tearing down here models a process that died
  // with the record on disk but the in-memory transition not yet applied.
  // In-flight attempts drain through the usual job_failed_ checks, cleanup
  // is skipped, and Run surfaces kAborted. Returns true when it fired.
  bool MaybeCrashLocked(CrashEvent event) {
    if (journal_ == nullptr) return false;
    const int64_t occurrence = crash_counts_[static_cast<size_t>(event)]++;
    if (!conf_.local_fault_plan.CrashesAt(event, occurrence)) return false;
    FailJobLocked(Status::Aborted(StringPrintf(
        "simulated crash at %s@%lld — durable state kept; re-run with "
        "--resume",
        CrashEventName(event), static_cast<long long>(occurrence))));
    return true;
  }

  // A journal append failure kills the job: continuing would let state
  // transitions outrun the log, the one inversion the write-ahead contract
  // forbids.
  void JournalAppend(const Status& status) {
    if (status.ok()) return;
    FailJob(Annotate(status, "job journal append"));
  }

  // Adds a chunk of reduce-side busy time to the phase accumulators,
  // clipping against the end of the map phase for the overlap metric.
  void AddBusy(Clock::time_point t0, Clock::time_point t1, bool merge_bucket) {
    const double dur = Seconds(t1 - t0);
    if (dur <= 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    (merge_bucket ? shuffle_merge_busy_ : reduce_compute_busy_) += dur;
    if (!map_phase_done_) {
      overlap_busy_ += dur;
    } else if (map_phase_end_ > t0) {
      overlap_busy_ += Seconds(std::min(t1, map_phase_end_) - t0);
    }
  }

  // ---- map side ----
  void MapTaskMain(int m) {
    if (JobFailed()) return;
    const Status status = RunMapToCommit(m);
    if (!status.ok()) FailJob(status);
  }

  // Runs attempts of map `m` until one commits or the budget is exhausted.
  // Shared by the initial run and inline re-execution after lost output.
  Status RunMapToCommit(int m) {
    while (true) {
      if (JobFailed()) return Status::OK();  // job already failing elsewhere
      int attempt;
      {
        std::lock_guard<std::mutex> lock(mu_);
        attempt = slots_[static_cast<size_t>(m)].attempts_started++;
        ++result_.map_attempts;
        if (attempt > 0) ++result_.map_retries;
      }
      if (journal_ != nullptr) {
        JournalAppend(journal_->AppendAttemptStart(/*is_map=*/true, m,
                                                   attempt));
        if (JobFailed()) return Status::OK();
      }
      CancelToken token;
      // Arm inside the worker: the deadline covers execution, not time
      // spent queued behind other attempts.
      const int64_t ticket = watchdog_.Arm(&token);
      MapAttemptOutcome outcome = RunMapAttempt(
          conf_, m, attempt, input_format_, splits_[static_cast<size_t>(m)],
          mapper_factory_, partitioner_factory_, combiner_factory_, injector_,
          store_.get(), &token);
      watchdog_.Disarm(ticket);
      if (outcome.status.ok()) {
        CommitMapOutput(m, attempt, std::move(outcome));
        return Status::OK();
      }
      if (journal_ != nullptr) {
        JournalAppend(journal_->AppendAttemptFail(/*is_map=*/true, m,
                                                  attempt));
      }
      bool exhausted;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (outcome.status.code() == StatusCode::kDeadlineExceeded) {
          ++result_.watchdog_timeouts;
        }
        exhausted = slots_[static_cast<size_t>(m)].attempts_started >=
                    conf_.max_task_attempts;
      }
      if (exhausted) {
        return Annotate(outcome.status,
                        StringPrintf("map task %d failed after %d attempts",
                                     m, conf_.max_task_attempts));
      }
    }
  }

  // Publishes a committed map output under the current target generation
  // and fans the commit event out to every launched reduce's fetch queue.
  // With the journal on, the commit record (carrying the durable extent's
  // manifest) must land before the output becomes visible — a crash
  // between the two leaves a record resume can act on, never a visible
  // output the journal does not know about.
  void CommitMapOutput(int m, int attempt, MapAttemptOutcome outcome) {
    int build_stream = -1;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (journal_ != nullptr) {
        if (job_failed_) return;
        JournalMapCommit commit;
        commit.task = m;
        commit.attempt = attempt;
        commit.stats = ToJournalStats(outcome.stats);
        if (outcome.stored_output != nullptr) {
          commit.has_extent = true;
          commit.extent.file_name = Basename(outcome.stored_output->path());
          commit.extent.file_bytes = outcome.stored_output->file_bytes();
          commit.extent.logical_bytes = outcome.stored_output->logical_bytes();
          commit.extent.partitions = outcome.stored_output->partitions();
        }
        const Status appended = journal_->AppendMapCommit(commit);
        if (!appended.ok()) {
          FailJobLocked(Annotate(appended, "job journal append"));
          return;
        }
        if (MaybeCrashLocked(CrashEvent::kMapCommit)) return;
      }
      MapSlot& slot = slots_[static_cast<size_t>(m)];
      if (outcome.stored_output != nullptr) {
        slot.stored = std::move(outcome.stored_output);
        slot.segment.reset();
      } else {
        slot.segment =
            std::make_shared<const SpillSegment>(std::move(outcome.output));
        slot.stored.reset();
      }
      slot.committed_gen = slot.target_gen;
      slot.stats = outcome.stats;
      const int s = StreamOf(m);
      GroupSlot& group = groups_[static_cast<size_t>(s)];
      if (GroupSizeOf(s) == 1) {
        // Singleton stream: the shuffle serves the map output directly,
        // under the member's own generation.
        group.segment = slot.segment;
        group.stored = slot.stored;
        group.committed_gen = slot.committed_gen;
        group.target_gen = slot.committed_gen;
        if (transport_server_ != nullptr) {
          // Publish before the fetch events fan out (same critical
          // section), so a fetcher can never race ahead of the server's
          // registration.
          transport_server_->Publish(
              s, static_cast<uint32_t>(group.committed_gen), group.segment,
              group.stored);
        }
      } else if (AllMembersCurrentLocked(s)) {
        // Last member of the block just (re-)committed: the combined
        // content must change, so retarget and rebuild. The build runs
        // outside the lock on this same worker thread — never parked
        // waiting for pool capacity, exactly like inline re-execution.
        if (group.committed_gen >= 0 &&
            group.committed_gen == group.target_gen) {
          ++group.target_gen;
        }
        if (!group.building) {
          group.building = true;
          build_stream = s;
        }
      }
      if (!slot.initial_committed) {
        slot.initial_committed = true;
        ++initial_commits_;
        if (initial_commits_ == conf_.num_maps) {
          map_phase_end_ = Clock::now();
          map_phase_done_ = true;
        }
        if (!reduces_launched_ && initial_commits_ >= slowstart_threshold_) {
          LaunchReducesLocked();
        }
      }
      if (reduces_launched_ && GroupSizeOf(s) == 1) {
        for (int r = 0; r < conf_.num_reduces; ++r) EnqueueFetchLocked(r, s);
      }
      cv_.notify_all();  // wakes WaitUntilCurrent
    }
    if (build_stream >= 0) BuildGroup(build_stream);
  }

  bool AllMembersCurrentLocked(int s) const {
    for (int m = MemberBegin(s); m < MemberEnd(s); ++m) {
      const MapSlot& slot = slots_[static_cast<size_t>(m)];
      if (slot.committed_gen < 0 || slot.committed_gen != slot.target_gen) {
        return false;
      }
    }
    return true;
  }

  // Builds (or rebuilds) the node-combined segment for multi-member stream
  // `s` and publishes it under the group's target generation. Runs outside
  // mu_ on the committing worker's thread; `building` guarantees a single
  // builder per stream. Loops until the installed segment matches the
  // group's target — a member re-commit mid-build just bumps the target
  // and the loop folds the fresh bytes in.
  void BuildGroup(int s) {
    while (true) {
      std::vector<NodeCombineMember> members;
      int target = 0;
      {
        std::lock_guard<std::mutex> lock(mu_);
        GroupSlot& group = groups_[static_cast<size_t>(s)];
        if (job_failed_ || !AllMembersCurrentLocked(s) ||
            group.committed_gen == group.target_gen) {
          // Failing job, a member mid-regeneration (its re-commit will
          // retrigger), or another commit already satisfied the target.
          group.building = false;
          return;
        }
        target = group.target_gen;
        for (int m = MemberBegin(s); m < MemberEnd(s); ++m) {
          const MapSlot& slot = slots_[static_cast<size_t>(m)];
          members.push_back({m, slot.segment, slot.stored});
        }
      }
      std::unique_ptr<Reducer> combiner =
          combiner_factory_ != nullptr ? combiner_factory_(s) : nullptr;
      std::vector<int> corrupt;
      Result<NodeCombineOutput> built = BuildNodeCombinedSegment(
          members, conf_, comparator_, combiner.get(), s, &corrupt);
      if (!built.ok()) {
        if (!HandleGroupBuildFailure(s, target, corrupt, built.status())) {
          return;
        }
        continue;  // members re-committed; rebuild from fresh bytes
      }
      NodeCombineOutput output = std::move(built).value();
      std::shared_ptr<const StoredSpill> stored;
      if (store_ != nullptr) {
        // Park the combined segment in the spill store like any final map
        // output, so the tcp transport serves it through the same
        // zero-copy sendfile path. Extent task ids live above the real
        // maps'; ENOSPC/EIO degrades to RAM residency as usual. The
        // extent is derived state — never journaled, swept as an orphan
        // on resume, rebuilt from the members.
        Result<std::shared_ptr<const StoredSpill>> put =
            store_->Put(output.segment, conf_.num_maps + s, target);
        if (put.ok()) {
          stored = std::move(put).value();
        } else {
          std::lock_guard<std::mutex> lock(mu_);
          ++result_.spill_degradations;
        }
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        GroupSlot& group = groups_[static_cast<size_t>(s)];
        if (group.target_gen != target) continue;  // content moved on
        if (stored != nullptr) {
          group.stored = std::move(stored);
          group.segment.reset();
        } else {
          group.segment = std::make_shared<const SpillSegment>(
              std::move(output.segment));
          group.stored.reset();
        }
        group.committed_gen = target;
        group.building = false;
        result_.combine_node_input_records += output.stats.input_records;
        result_.combine_node_output_records += output.stats.output_records;
        result_.combine_node_input_bytes += output.stats.input_bytes;
        result_.combine_node_output_bytes += output.stats.output_bytes;
        ++result_.node_combines;
        combine_node_seconds_ += output.stats.combine_seconds;
        if (transport_server_ != nullptr) {
          transport_server_->Publish(s, static_cast<uint32_t>(target),
                                     group.segment, group.stored);
        }
        if (reduces_launched_) {
          for (int r = 0; r < conf_.num_reduces; ++r) {
            EnqueueFetchLocked(r, s);
          }
        }
        cv_.notify_all();
        return;
      }
    }
  }

  // A node-combine build hit damaged member bytes. Re-executes the blamed
  // members inline (bumping the group's target so nothing serves the old
  // combined bytes meanwhile) and returns true when the caller should
  // rebuild; false when the job is failing. `building` stays held by the
  // calling BuildGroup throughout, so member re-commits cannot start a
  // second builder.
  bool HandleGroupBuildFailure(int s, int target,
                               const std::vector<int>& corrupt,
                               const Status& status) {
    std::vector<int> reexec(corrupt);
    std::sort(reexec.begin(), reexec.end());
    reexec.erase(std::unique(reexec.begin(), reexec.end()), reexec.end());
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (reexec.empty() || job_failed_) {
        // No member to blame (compression failure, internal error): the
        // rebuild could only fail identically, so the job fails.
        groups_[static_cast<size_t>(s)].building = false;
        FailJobLocked(Annotate(
            status, StringPrintf("node combine of stream %d failed", s)));
        return false;
      }
      result_.corruptions_detected += static_cast<int64_t>(reexec.size());
      GroupSlot& group = groups_[static_cast<size_t>(s)];
      if (group.target_gen == target) ++group.target_gen;
      for (int m : reexec) {
        MapSlot& slot = slots_[static_cast<size_t>(m)];
        if (slot.committed_gen >= 0 && slot.committed_gen == slot.target_gen) {
          ++slot.target_gen;
        }
        if (slot.attempts_started >= conf_.max_task_attempts) {
          group.building = false;
          FailJobLocked(Status::DataLoss(StringPrintf(
              "map task %d output still corrupt after %d attempts", m,
              conf_.max_task_attempts)));
          return false;
        }
      }
    }
    for (int m : reexec) {
      const Status reran = RunMapToCommit(m);
      if (!reran.ok()) {
        FailJob(reran);
        break;
      }
      if (JobFailed()) break;
    }
    if (JobFailed()) {
      std::lock_guard<std::mutex> lock(mu_);
      groups_[static_cast<size_t>(s)].building = false;
      return false;
    }
    return true;
  }

  // Slow-start gate: no fetcher runs before `reduce_slowstart` of the maps
  // committed (mapreduce.job.reduce.slowstart.completedmaps). Backfills
  // the queues with everything already committed.
  void LaunchReducesLocked() {
    reduces_launched_ = true;
    launch_time_ = Clock::now();
    for (int r = 0; r < conf_.num_reduces; ++r) {
      for (int s = 0; s < num_streams_; ++s) {
        const GroupSlot& group = groups_[static_cast<size_t>(s)];
        if (group.committed_gen >= 0 &&
            group.committed_gen == group.target_gen) {
          EnqueueFetchLocked(r, s);
        }
      }
    }
  }

  void EnqueueFetchLocked(int r, int s) {
    ReduceShuffle& rs = reduces_[static_cast<size_t>(r)];
    // Once the final task is scheduled this reduce's inputs are frozen: a
    // reduce that finished fetching keeps consuming the generation it has
    // (byte-identical to any regeneration), like a Hadoop reducer that
    // completed its copy phase before a map re-ran for someone else.
    if (rs.final_scheduled) return;
    rs.fetch_queue.push_back(s);
    if (!rs.drain_scheduled) {
      rs.drain_scheduled = true;
      pool_.Submit(kShuffleLane, [this, r] { DrainFetches(r); });
    }
  }

  // ---- reduce side: fetch + background merge (the "copy phase") ----
  void DrainFetches(int r) {
    ReduceShuffle& rs = reduces_[static_cast<size_t>(r)];
    // The batched (protocol v2) plane drains the whole queue as one
    // pipelined multi-fetch; the inproc and v1 planes pop one stream at a
    // time, each its own round trip.
    const bool batched =
        transport_client_ != nullptr && conf_.shuffle_protocol_version >= 2;
    while (true) {
      std::vector<int> streams;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (job_failed_) {
          rs.drain_scheduled = false;
          return;
        }
        if (rs.fetch_queue.empty()) {
          rs.drain_scheduled = false;
          MaybeScheduleFinalLocked(r);
          return;
        }
        if (batched) {
          streams.assign(rs.fetch_queue.begin(), rs.fetch_queue.end());
          rs.fetch_queue.clear();
        } else {
          streams.push_back(rs.fetch_queue.front());
          rs.fetch_queue.pop_front();
        }
      }
      if (batched) {
        ProcessFetchBatch(r, streams);
      } else {
        ProcessFetch(r, streams.front());
      }
    }
  }

  // The pipelined sibling of ProcessFetch: resolves every queued stream's
  // live generation under the lock, fetches them all in one FetchBatch
  // call (one batch request per in-flight window instead of one blocking
  // round trip per stream), then verifies and stores each entry. Streams
  // that moved on (mid-regeneration, duplicate event) are skipped exactly
  // like ProcessFetch does; entries the transport lost after its internal
  // retries — or that failed verification — go through HandleLostStream.
  void ProcessFetchBatch(int r, const std::vector<int>& streams) {
    ReduceShuffle& rs = reduces_[static_cast<size_t>(r)];
    std::vector<ShuffleFetchWant> wants;
    std::vector<int> gens;
    wants.reserve(streams.size());
    gens.reserve(streams.size());
    {
      std::lock_guard<std::mutex> lock(mu_);
      std::vector<bool> queued(static_cast<size_t>(num_streams_), false);
      for (int s : streams) {
        const GroupSlot& group = groups_[static_cast<size_t>(s)];
        if (group.committed_gen < 0 ||
            group.committed_gen != group.target_gen) {
          continue;  // mid-regeneration; the fresh publish re-enqueues
        }
        if (rs.inputs[static_cast<size_t>(s)].generation ==
            group.committed_gen) {
          continue;  // duplicate event
        }
        // The same stream can be queued twice (launch backfill + commit
        // event); the sequential path skips the second pop only after the
        // first stored, so dedup within the batch here.
        if (queued[static_cast<size_t>(s)]) continue;
        queued[static_cast<size_t>(s)] = true;
        ShuffleFetchWant want;
        want.map = s;
        want.partition = r;
        want.generation = static_cast<uint32_t>(group.committed_gen);
        wants.push_back(want);
        gens.push_back(group.committed_gen);
      }
    }
    if (wants.empty()) return;
    const auto t0 = Clock::now();
    std::vector<ShuffleFetchResult> results =
        transport_client_->FetchBatch(wants);
    bool any_stored = false;
    std::vector<std::pair<int, int>> lost;  // (stream, generation)
    for (size_t i = 0; i < wants.size(); ++i) {
      const int s = wants[i].map;
      if (!results[i].transport_ok) {
        lost.emplace_back(s, gens[i]);
        continue;
      }
      if (StoreFetchedBody(&rs, s, gens[i], &results[i])) {
        any_stored = true;
      } else {
        lost.emplace_back(s, gens[i]);
      }
    }
    if (any_stored) RunReadyNodes(r, &rs);
    const auto t1 = Clock::now();
    rs.drain_busy_seconds += Seconds(t1 - t0);
    AddBusy(t0, t1, /*merge_bucket=*/true);
    for (const auto& [s, gen] : lost) HandleLostStream(r, s, gen);
  }

  void ProcessFetch(int r, int s) {
    ReduceShuffle& rs = reduces_[static_cast<size_t>(r)];
    std::shared_ptr<const SpillSegment> segment;
    std::shared_ptr<const StoredSpill> disk;
    int gen = -1;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const GroupSlot& group = groups_[static_cast<size_t>(s)];
      if (group.committed_gen < 0 ||
          group.committed_gen != group.target_gen) {
        return;  // stream mid-regeneration; the fresh publish re-enqueues
      }
      if (rs.inputs[static_cast<size_t>(s)].generation ==
          group.committed_gen) {
        return;  // duplicate event
      }
      segment = group.segment;
      disk = group.stored;
      gen = group.committed_gen;
    }
    // Simulated transfer time, spent before the busy window so it lands in
    // the shuffle-wait bucket (lifetime minus busy), not in merge time.
    // fixed latency + on-wire bytes / bandwidth: a compressed partition
    // costs proportionally less wall-clock than its raw form, which is the
    // end-to-end win the codec knob exists to measure. The tcp transport
    // replaces the model with the measured wire, so it never sleeps here.
    if (transport_client_ == nullptr) {
      double transfer_ms = static_cast<double>(conf_.fetch_latency_ms);
      if (conf_.fetch_bandwidth_mbps > 0) {
        const double wire_bytes = static_cast<double>(
            disk != nullptr
                ? disk->partitions()[static_cast<size_t>(r)].length
                : segment->partitions[static_cast<size_t>(r)].length);
        transfer_ms +=
            wire_bytes / (conf_.fetch_bandwidth_mbps * 1024.0 * 1024.0) * 1e3;
      }
      if (transfer_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(transfer_ms));
      }
    }
    const auto t0 = Clock::now();
    const bool stored =
        transport_client_ != nullptr
            ? FetchAndStoreTcp(r, &rs, s, gen)
            : VerifyAndStore(r, &rs, s, std::move(segment), std::move(disk),
                             gen);
    if (stored) RunReadyNodes(r, &rs);
    const auto t1 = Clock::now();
    rs.drain_busy_seconds += Seconds(t1 - t0);
    AddBusy(t0, t1, /*merge_bucket=*/true);
    if (!stored) {
      // Verification failed: the loss was reported (and, if this thread
      // was the first reporter, the producers re-executed inline just now —
      // that time is charged to the map phase, not the shuffle).
      HandleLostStream(r, s, gen);
    }
  }

  // Verifies one fetched (stream, generation) partition — the once-per-
  // generation CRC check; re-fetches of the same generation never re-hash —
  // and stores the zero-copy view, invalidating any stale generation it
  // replaces (plus every merge-plan node that folded the stale bytes).
  // Returns false on a CRC mismatch, which the caller reports.
  bool VerifyAndStore(int r, ReduceShuffle* rs, int s,
                      std::shared_ptr<const SpillSegment> segment,
                      std::shared_ptr<const StoredSpill> disk, int gen) {
    const bool codec_active =
        conf_.effective_map_output_codec() != MapOutputCodec::kNone;
    std::string owned;  // disk-path partition bytes (merge-ready framing)
    if (disk != nullptr) {
      // Disk-backed output: read the partition back through the store.
      // Block CRCs are always checked down there (single-bit damage healed
      // in place); passing checksum_map_output additionally re-checks the
      // partition-level CRC — the same end-to-end verify the resident path
      // does. A kDataLoss (torn tail, unrepairable block, corrupt_map
      // injection) is the familiar lost-output event; a kIOError (injected
      // eio_prob exhausting its retries) is reported the same way and heals
      // through re-execution rather than aborting.
      Result<std::string> part =
          disk->ReadPartition(r, conf_.checksum_map_output);
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (conf_.checksum_map_output) ++result_.crc_verifications;
        if (!part.ok() && part.status().code() != StatusCode::kIOError) {
          ++result_.corruptions_detected;
        }
      }
      if (!part.ok()) return false;
      owned = std::move(part).value();
      if (codec_active) {
        std::string inflated;
        const Status decode = BlockDecompress(owned, &inflated);
        if (!decode.ok()) {
          std::lock_guard<std::mutex> lock(mu_);
          ++result_.corruptions_detected;
          return false;
        }
        owned = std::move(inflated);
      }
    } else if (conf_.checksum_map_output) {
      // CRC runs over the stored bytes — the compressed form when a codec
      // is active, so sealing and verification got cheaper too.
      const Status verify = VerifySegmentPartition(*segment, r);
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++result_.crc_verifications;
        if (!verify.ok()) ++result_.corruptions_detected;
      }
      if (!verify.ok()) return false;
    }
    // Decompress once per (stream, partition, generation) — the codec
    // sibling of the CRC verify cache; re-fetches of a cached generation
    // never re-inflate. A frame that fails to decode (its header CRC
    // catches corruption even when checksum verification is off) is the
    // same lost-output event as a CRC mismatch.
    std::string decompressed;
    if (disk == nullptr && codec_active) {
      const Status decode =
          BlockDecompress(segment->PartitionData(r), &decompressed);
      if (!decode.ok()) {
        std::lock_guard<std::mutex> lock(mu_);
        ++result_.corruptions_detected;
        return false;
      }
    }
    FetchedInput& input = rs->inputs[static_cast<size_t>(s)];
    if (input.generation >= 0) {
      std::lock_guard<std::mutex> lock(mu_);
      ++result_.stale_fetches_invalidated;
    }
    if (input.generation >= 0) DirtyNodesCovering(rs, s);
    input.generation = gen;
    if (disk != nullptr) {
      // The read already copied (and decoded) this reduce's slice; the
      // copy is self-owned, so the extent handle itself need not be pinned
      // here — GroupSlot keeps it alive for later fetches.
      input.segment.reset();
      input.decompressed = std::move(owned);
      input.view = input.decompressed;
      return true;
    }
    input.segment = std::move(segment);
    if (codec_active) {
      input.decompressed = std::move(decompressed);
      input.view = input.decompressed;
    } else {
      input.view = input.segment->PartitionData(r);
    }
    return true;
  }

  // The tcp sibling of VerifyAndStore: fetches stream `s`'s partition `r`
  // over the wire at generation `gen`, verifies it end to end, and stores
  // the merge-ready bytes. Transport-level failures (dropped connection,
  // torn header, short body) retry on a fresh connection; CRC mismatches
  // and undecodable frames are corruption and go straight to the
  // lost-output path. Returns false when the caller must report the stream
  // lost; stale and not-found refusals also return false, where
  // HandleLostStream is a no-op (the slot moved on) and the fresh commit's
  // event re-fetches.
  bool FetchAndStoreTcp(int r, ReduceShuffle* rs, int s, int gen) {
    ShuffleFetchResult fetched;
    for (int attempt = 0;; ++attempt) {
      Result<ShuffleFetchResult> fetch =
          transport_client_->Fetch(s, r, static_cast<uint32_t>(gen));
      if (fetch.ok()) {
        fetched = std::move(fetch).value();
        break;
      }
      std::lock_guard<std::mutex> lock(mu_);
      if (attempt + 1 >= kTransportFetchAttempts || job_failed_) {
        return false;  // exhausted: declare the output lost, re-execute
      }
      ++result_.transport_retransmits;
    }
    return StoreFetchedBody(rs, s, gen, &fetched);
  }

  // Verifies and stores one transport-fetched partition body — the shared
  // tail of the v1 (FetchAndStoreTcp) and batched (ProcessFetchBatch)
  // paths. Spent wire buffers go back to the client's reuse pool; the
  // merge-ready bytes escape into the FetchedInput.
  bool StoreFetchedBody(ReduceShuffle* rs, int s, int gen,
                        ShuffleFetchResult* fetched) {
    if (fetched->status != FetchStatus::kOk) {
      // kStaleGeneration / kNotFound: the server moved past `gen` (or a
      // replaced registration raced us). Nothing to store; the commit that
      // bumped the generation re-publishes and re-enqueues this fetch.
      // kDataLoss: the registration is live but its backing bytes are gone
      // — a genuine lost output, re-executed via HandleLostStream.
      // kError (digest mismatch) can only be a wiring bug — treated as a
      // lost output so the job fails loudly through the attempt budget.
      return false;
    }
    std::string wire;  // partition bytes exactly as sealed (codec frames)
    if (fetched->encoding == FetchEncoding::kFrameStream) {
      wire = transport_client_->AcquireBuffer();
      const Status reassembled = ReassembleFrameStream(fetched->body, &wire);
      transport_client_->RecycleBuffer(std::move(fetched->body));
      if (!reassembled.ok()) {
        std::lock_guard<std::mutex> lock(mu_);
        ++result_.corruptions_detected;
        return false;
      }
    } else {
      wire = std::move(fetched->body);
    }
    if (conf_.checksum_map_output) {
      const bool matches = Crc32c(wire) == fetched->partition_crc;
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++result_.crc_verifications;
        if (!matches) ++result_.corruptions_detected;
      }
      if (!matches) return false;
    }
    const bool codec_active =
        conf_.effective_map_output_codec() != MapOutputCodec::kNone;
    std::string merged_ready;
    if (codec_active) {
      const Status decode = BlockDecompress(wire, &merged_ready);
      transport_client_->RecycleBuffer(std::move(wire));
      if (!decode.ok()) {
        std::lock_guard<std::mutex> lock(mu_);
        ++result_.corruptions_detected;
        return false;
      }
    } else {
      merged_ready = std::move(wire);
    }
    FetchedInput& input = rs->inputs[static_cast<size_t>(s)];
    if (input.generation >= 0) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++result_.stale_fetches_invalidated;
      }
      DirtyNodesCovering(rs, s);
    }
    input.generation = gen;
    // The fetched copy is self-owned — no segment to pin, wire or not.
    input.segment.reset();
    input.decompressed = std::move(merged_ready);
    input.view = input.decompressed;
    return true;
  }

  // Invalidates every intermediate merge that folded stream `s`'s bytes.
  // Spans nest, so this covers all ancestors of the leaf too.
  void DirtyNodesCovering(ReduceShuffle* rs, int s) {
    for (size_t n = 0; n < plan_.nodes.size(); ++n) {
      const PlanNode& node = plan_.nodes[n];
      if (node.leaf_begin <= s && s < node.leaf_end) {
        rs->nodes[n] = NodeState();
      }
    }
  }

  // Declares stream `s`'s generation `gen` lost. The first reporter bumps
  // the stream's target generation, bumps every current member map, and
  // re-executes them inline on its own thread (so a worker is never parked
  // waiting for pool capacity); later reporters return immediately and
  // pick up the fresh publish's event. For a multi-member stream the last
  // member's re-commit triggers the group rebuild.
  void HandleLostStream(int r, int s, int gen) {
    (void)r;
    std::vector<int> reexec;
    {
      std::lock_guard<std::mutex> lock(mu_);
      GroupSlot& group = groups_[static_cast<size_t>(s)];
      if (group.target_gen != gen || group.committed_gen != gen) {
        return;  // not the first reporter; the slot already moved on
      }
      ++group.target_gen;
      for (int m = MemberBegin(s); m < MemberEnd(s); ++m) {
        MapSlot& slot = slots_[static_cast<size_t>(m)];
        if (slot.committed_gen >= 0 && slot.committed_gen == slot.target_gen) {
          ++slot.target_gen;
          reexec.push_back(m);
        }
      }
      for (int m : reexec) {
        if (slots_[static_cast<size_t>(m)].attempts_started >=
            conf_.max_task_attempts) {
          FailJobLocked(Status::DataLoss(StringPrintf(
              "map task %d output still corrupt after %d attempts", m,
              conf_.max_task_attempts)));
          return;
        }
      }
    }
    for (int m : reexec) {
      const Status status = RunMapToCommit(m);
      if (!status.ok()) {
        FailJob(status);
        return;
      }
      if (JobFailed()) return;
    }
  }

  // Folds every merge-plan node whose children are all available. Runs on
  // the drain (or final-task) thread; this is the MergeManager-style
  // background merge that keeps the final fan-in <= merge_factor.
  void RunReadyNodes(int r, ReduceShuffle* rs) {
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (size_t n = 0; n < plan_.nodes.size(); ++n) {
        if (rs->nodes[n].done) continue;
        const PlanNode& node = plan_.nodes[n];
        bool ready = true;
        for (const StreamRef& child : node.children) {
          if (child.leaf >= 0) {
            if (rs->inputs[static_cast<size_t>(child.leaf)].generation < 0) {
              ready = false;
              break;
            }
          } else if (!rs->nodes[static_cast<size_t>(child.node)].done) {
            ready = false;
            break;
          }
        }
        if (!ready) continue;
        std::vector<FramedRun> runs;
        runs.reserve(node.children.size());
        for (const StreamRef& child : node.children) {
          if (child.leaf >= 0) {
            runs.push_back({rs->inputs[static_cast<size_t>(child.leaf)].view,
                            child.leaf});
          } else {
            runs.push_back(
                {rs->nodes[static_cast<size_t>(child.node)].merged.data, -1});
          }
        }
        std::vector<int> corrupt_sources;
        Result<MergedRun> merged =
            MergeFramedRuns(runs, comparator_, &corrupt_sources);
        if (!merged.ok()) {
          // Malformed bytes slipped past (checksums off). Blame the raw
          // producers and let the regeneration events redo this fold.
          ReportCorruptSources(r, rs, node, corrupt_sources);
          return;
        }
        // Merge-time combining, reduce side: fold output is a sorted run,
        // so the combiner collapses duplicate keys that straddled the
        // folded streams before the bytes sit in memory awaiting the final
        // merge — the MergeManager combine pass, gated by the same knob as
        // the map-side sibling.
        if (combiner_factory_ != nullptr && conf_.min_spills_for_combine > 0) {
          const auto t0 = Clock::now();
          std::unique_ptr<Reducer> combiner = combiner_factory_(r);
          Result<MergedRun> combined = CombineSortedRun(
              merged->data, comparator_, combiner.get(), conf_, r);
          if (!combined.ok()) {
            // The run came out of our own fold; this can only be a
            // framework bug.
            FailJob(Annotate(
                combined.status(),
                StringPrintf("reduce task %d: combining a merge fold", r)));
            return;
          }
          {
            std::lock_guard<std::mutex> lock(mu_);
            result_.combine_reduce_input_records += merged->records;
            result_.combine_reduce_input_bytes +=
                static_cast<int64_t>(merged->data.size());
            result_.combine_reduce_output_records += combined->records;
            result_.combine_reduce_output_bytes +=
                static_cast<int64_t>(combined->data.size());
            combine_reduce_seconds_ += Seconds(Clock::now() - t0);
          }
          merged = std::move(combined);
        }
        rs->nodes[n].merged = std::move(merged).value();
        rs->nodes[n].done = true;
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++result_.intermediate_merges;
        }
        progressed = true;
      }
    }
  }

  // Reports every corrupt source stream of a failed fold. A -1 source is
  // one of our own intermediate outputs (should be impossible — we wrote
  // those bytes); blame its whole span to stay safe.
  void ReportCorruptSources(int r, ReduceShuffle* rs, const PlanNode& node,
                            const std::vector<int>& corrupt_sources) {
    std::vector<int> streams;
    for (int source : corrupt_sources) {
      if (source >= 0) {
        streams.push_back(source);
      } else {
        for (int s = node.leaf_begin; s < node.leaf_end; ++s) {
          streams.push_back(s);
        }
      }
    }
    std::sort(streams.begin(), streams.end());
    streams.erase(std::unique(streams.begin(), streams.end()),
                  streams.end());
    {
      std::lock_guard<std::mutex> lock(mu_);
      result_.corruptions_detected += static_cast<int64_t>(streams.size());
    }
    for (int s : streams) {
      int gen;
      {
        std::lock_guard<std::mutex> lock(mu_);
        gen = rs->inputs[static_cast<size_t>(s)].generation;
      }
      HandleLostStream(r, s, gen);
      if (JobFailed()) return;
    }
  }

  // Schedules the final merge+reduce once every stream's current
  // generation has been fetched and every background fold is done. Only
  // ever called by this reduce's drain with the queue empty, so the
  // drain-owned state is safe to read.
  void MaybeScheduleFinalLocked(int r) {
    ReduceShuffle& rs = reduces_[static_cast<size_t>(r)];
    if (rs.final_scheduled || job_failed_) return;
    for (int s = 0; s < num_streams_; ++s) {
      const GroupSlot& group = groups_[static_cast<size_t>(s)];
      if (group.committed_gen < 0 ||
          group.committed_gen != group.target_gen ||
          rs.inputs[static_cast<size_t>(s)].generation !=
              group.committed_gen) {
        return;
      }
    }
    for (const NodeState& node : rs.nodes) {
      if (!node.done) return;
    }
    rs.final_scheduled = true;
    pool_.Submit(kShuffleLane, [this, r] { ReduceTaskMain(r); });
  }

  // ---- reduce side: final merge + reduce function ----
  void ReduceTaskMain(int r) {
    ReduceShuffle& rs = reduces_[static_cast<size_t>(r)];
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (job_failed_) return;
      rs.final_start = Clock::now();
    }
    while (true) {
      if (JobFailed()) return;
      int attempt;
      {
        std::lock_guard<std::mutex> lock(mu_);
        attempt = rs.attempts_started++;
        ++result_.reduce_attempts;
        if (attempt > 0) ++result_.reduce_retries;
      }
      if (journal_ != nullptr) {
        JournalAppend(journal_->AppendAttemptStart(/*is_map=*/false, r,
                                                   attempt));
        if (JobFailed()) return;
      }
      CancelToken token;
      const int64_t ticket = watchdog_.Arm(&token);
      const auto t0 = Clock::now();
      ReduceAttemptOutcome outcome = RunReduceFinal(r, &rs, attempt, &token);
      const auto t1 = Clock::now();
      AddBusy(t0, t1, /*merge_bucket=*/false);
      if (outcome.status.ok()) {
        watchdog_.Disarm(ticket);
        if (journal_ != nullptr) {
          const Status committed = CommitReduceJournaled(
              r, &rs, attempt, std::move(outcome.committed));
          if (committed.ok()) return;
          // Staging the part file failed (an I/O problem, not bad reduce
          // output) — charge it like any other attempt failure and retry.
          if (!HandleReduceFailure(r, &rs, committed)) return;
          continue;
        }
        std::lock_guard<std::mutex> lock(mu_);
        rs.committed = std::move(outcome.committed);
        rs.completed = true;
        return;
      }
      if (!outcome.corrupt_streams.empty()) {
        // Mid-merge DataLoss (the detection path when checksums are off):
        // the producers' fault. Re-execute them, re-fetch, and re-run this
        // reduce as a fresh attempt without charging its failure budget.
        {
          std::lock_guard<std::mutex> lock(mu_);
          result_.corruptions_detected +=
              static_cast<int64_t>(outcome.corrupt_streams.size());
        }
        for (int s : outcome.corrupt_streams) {
          int gen;
          {
            std::lock_guard<std::mutex> lock(mu_);
            gen = rs.inputs[static_cast<size_t>(s)].generation;
          }
          HandleLostStream(r, s, gen);
          if (JobFailed()) {
            watchdog_.Disarm(ticket);
            return;
          }
        }
        const Status refreshed = RefreshInputs(r, &rs, &token);
        watchdog_.Disarm(ticket);
        if (!refreshed.ok()) {
          if (!HandleReduceFailure(r, &rs, refreshed)) return;
        }
        continue;
      }
      watchdog_.Disarm(ticket);
      if (!HandleReduceFailure(r, &rs, outcome.status)) return;
    }
  }

  // Journal-mode reduce commit — the two-phase output protocol. The staged
  // pairs are serialized and fsync'd to the attempt's private staging file
  // first, outside the lock; then, under the lock, the file is promoted
  // with one rename and the reduce-commit record appended. A crash at any
  // instant leaves durable state resume can reconcile: a staged orphan is
  // swept, a committed part without its record is re-committed with
  // identical bytes, a record always describes a committed part. On
  // success `rs` is marked completed. Returns non-OK only for staging I/O
  // failures, which the caller charges as an attempt failure.
  Status CommitReduceJournaled(int r, ReduceShuffle* rs, int attempt,
                               ReduceTaskOutcome outcome) {
    uint32_t part_crc = 0;
    const std::string blob = EncodeReducePart(outcome.output, &part_crc);
    const std::string staged = committer_->AttemptPath(r, attempt);
    const Status written = WriteFileDurable(staged, blob);
    if (!written.ok()) {
      return Annotate(written,
                      StringPrintf("reduce task %d: staging output", r));
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (job_failed_) {
      ::unlink(staged.c_str());
      return Status::OK();
    }
    JournalReduceCommit commit;
    commit.task = r;
    commit.attempt = attempt;
    commit.groups = outcome.groups;
    commit.output_records = static_cast<int64_t>(outcome.output.size());
    for (const auto& [key, value] : outcome.output) {
      commit.output_bytes += static_cast<int64_t>(key.size() + value.size());
    }
    // Input-side stats captured into the record so a resume that adopts
    // this reduce can report them without any map output present. These
    // count what the shuffle served — node-combined streams, when on.
    for (int s = 0; s < num_streams_; ++s) {
      const GroupSlot& group = groups_[static_cast<size_t>(s)];
      const SpillSegment::PartitionRange& range =
          group.stored != nullptr
              ? group.stored->partitions()[static_cast<size_t>(r)]
              : group.segment->partitions[static_cast<size_t>(r)];
      commit.input_records += range.records;
      commit.input_bytes += range.raw_bytes();
    }
    commit.part_bytes = static_cast<int64_t>(blob.size());
    commit.part_crc = part_crc;
    const Status promoted = committer_->CommitTask(r, attempt);
    if (!promoted.ok()) {
      FailJobLocked(Annotate(
          promoted, StringPrintf("reduce task %d: committing output", r)));
      return Status::OK();
    }
    const Status appended = journal_->AppendReduceCommit(commit);
    if (!appended.ok()) {
      FailJobLocked(Annotate(appended, "job journal append"));
      return Status::OK();
    }
    rs->committed = std::move(outcome);
    rs->completed = true;
    MaybeCrashLocked(CrashEvent::kReduceCommit);
    return Status::OK();
  }

  // Charges a genuine reduce failure against the task's budget. Returns
  // false when the job is failing (budget exhausted).
  bool HandleReduceFailure(int r, ReduceShuffle* rs, const Status& status) {
    bool exhausted;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (journal_ != nullptr) {
        const Status logged = journal_->AppendAttemptFail(
            /*is_map=*/false, r, rs->attempts_started - 1);
        if (!logged.ok()) FailJobLocked(Annotate(logged, "job journal append"));
      }
      if (status.code() == StatusCode::kDeadlineExceeded) {
        ++result_.watchdog_timeouts;
      }
      exhausted = ++rs->failures >= conf_.max_task_attempts;
    }
    if (exhausted) {
      FailJob(Annotate(status,
                       StringPrintf("reduce task %d failed after %d attempts",
                                    r, conf_.max_task_attempts)));
      return false;
    }
    return true;
  }

  // Blocks until stream `s` has a committed, current generation. Waits in
  // short slices so the watchdog token stays responsive.
  Status WaitUntilCurrent(int s, CancelToken* token) {
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      if (job_failed_) {
        return Status::Internal("job failed while waiting for map output");
      }
      const GroupSlot& group = groups_[static_cast<size_t>(s)];
      if (group.committed_gen >= 0 &&
          group.committed_gen == group.target_gen) {
        return Status::OK();
      }
      if (token != nullptr && token->cancelled()) {
        return Status::DeadlineExceeded(StringPrintf(
            "cancelled while waiting for shuffle stream %d to re-commit", s));
      }
      const auto t0 = Clock::now();
      cv_.wait_for(lock, std::chrono::milliseconds(10));
      shuffle_wait_busy_ += Seconds(Clock::now() - t0);
    }
  }

  // Brings every input back to the current generation after a mid-merge
  // corruption (final task only; drains are frozen out by final_scheduled,
  // so this thread owns the fetch state again).
  Status RefreshInputs(int r, ReduceShuffle* rs, CancelToken* token) {
    for (int s = 0; s < num_streams_; ++s) {
      while (true) {
        MRMB_RETURN_IF_ERROR(WaitUntilCurrent(s, token));
        std::shared_ptr<const SpillSegment> segment;
        std::shared_ptr<const StoredSpill> disk;
        int gen = -1;
        {
          std::lock_guard<std::mutex> lock(mu_);
          const GroupSlot& group = groups_[static_cast<size_t>(s)];
          if (rs->inputs[static_cast<size_t>(s)].generation ==
              group.committed_gen) {
            break;  // already current
          }
          segment = group.segment;
          disk = group.stored;
          gen = group.committed_gen;
        }
        const auto t0 = Clock::now();
        const bool stored =
            transport_client_ != nullptr
                ? FetchAndStoreTcp(r, rs, s, gen)
                : VerifyAndStore(r, rs, s, std::move(segment),
                                 std::move(disk), gen);
        AddBusy(t0, Clock::now(), /*merge_bucket=*/true);
        if (stored) break;
        HandleLostStream(r, s, gen);  // corrupt again; wait for the next gen
      }
    }
    const auto t0 = Clock::now();
    RunReadyNodes(r, rs);
    AddBusy(t0, Clock::now(), /*merge_bucket=*/true);
    for (const NodeState& node : rs->nodes) {
      if (!node.done) {
        // A fold failed again mid-refresh; surface as DataLoss so the
        // attempt loop retries (HandleLostOutput already ran inside
        // RunReadyNodes).
        return Status::DataLoss(StringPrintf(
            "reduce task %d: background merge kept failing on refetch", r));
      }
    }
    return Status::OK();
  }

  // The final bounded-fan-in merge + reduce function, staged and committed
  // like any attempt. No checksum work here: every input was verified at
  // fetch time (once per generation) by the drain.
  ReduceAttemptOutcome RunReduceFinal(int r, ReduceShuffle* rs, int attempt,
                                      CancelToken* cancel) {
    ReduceAttemptOutcome outcome;
    const int64_t delay = injector_.ReduceDelayMs(r, attempt);
    if (delay > 0 && !cancel->SleepFor(delay)) {
      outcome.status = Status::DeadlineExceeded(StringPrintf(
          "reduce task %d attempt %d cancelled during injected %lld ms stall",
          r, attempt, static_cast<long long>(delay)));
      return outcome;
    }
    if (injector_.ShouldFailReduce(r, attempt)) {
      outcome.status = Status::Internal(StringPrintf(
          "injected failure of reduce task %d attempt %d", r, attempt));
      return outcome;
    }

    // Final streams in ascending leaf-span order; the merge's input-index
    // tie-break then reproduces the flat merge's equal-key order exactly.
    std::vector<std::unique_ptr<RecordStream>> inputs;
    std::vector<const RecordStream*> readers;
    std::vector<std::pair<int, int>> spans;  // blame span per stream
    inputs.reserve(plan_.final_streams.size());
    for (const StreamRef& ref : plan_.final_streams) {
      std::string_view data;
      if (ref.leaf >= 0) {
        data = rs->inputs[static_cast<size_t>(ref.leaf)].view;
        spans.emplace_back(ref.leaf, ref.leaf + 1);
      } else {
        const PlanNode& node = plan_.nodes[static_cast<size_t>(ref.node)];
        data = rs->nodes[static_cast<size_t>(ref.node)].merged.data;
        spans.emplace_back(node.leaf_begin, node.leaf_end);
      }
      auto reader =
          std::make_unique<SegmentReader>(data, comparator_->type());
      readers.push_back(reader.get());
      inputs.push_back(std::move(reader));
    }
    MergeIterator merged(std::move(inputs), comparator_);
    GroupedIterator groups(&merged, comparator_);
    std::unique_ptr<Reducer> reducer = reducer_factory_(r);
    StagedReduceContext context(conf_, r, cancel);
    while (context.status().ok() && groups.NextGroup()) {
      ++outcome.committed.groups;
      GroupValues values(&groups);
      reducer->Reduce(groups.group_key(), &values, &context);
    }
    if (!context.status().ok()) {
      outcome.status = context.status();
      return outcome;
    }
    // A malformed stream drops out of the merge tree instead of crashing;
    // it surfaces here. This is the only detection path when checksum
    // verification is disabled (and a second line of defence when not).
    for (size_t i = 0; i < readers.size(); ++i) {
      if (!readers[i]->status().ok()) {
        for (int s = spans[i].first; s < spans[i].second; ++s) {
          outcome.corrupt_streams.push_back(s);
        }
      }
    }
    if (!outcome.corrupt_streams.empty()) {
      outcome.status = Status::DataLoss(StringPrintf(
          "reduce task %d: %zu shuffle stream partition(s) were malformed "
          "mid-merge",
          r, outcome.corrupt_streams.size()));
      return outcome;
    }
    outcome.committed.output = context.TakeOutput();
    return outcome;
  }

  // ---- crash safety: journal setup, orphan sweep, adoption ----

  // The job's durable home: digest-keyed so different jobs sharing a
  // spill_dir never collide, and a resumed run finds exactly its own state.
  std::string JobDirPath() const {
    return StringPrintf("%s/mrmb-job-%016llx", conf_.spill_dir.c_str(),
                        static_cast<unsigned long long>(conf_.Digest()));
  }

  Status SetupCrashSafety() {
    namespace fs = std::filesystem;
    job_dir_ = JobDirPath();
    const std::string journal_path = job_dir_ + "/journal";
    result_.journal_enabled = true;
    std::error_code ec;
    if (!conf_.resume) {
      // A fresh journaled run owns the job dir outright; leftovers belong
      // to an abandoned run of the same job and would shadow new state.
      fs::remove_all(job_dir_, ec);
    }
    fs::create_directories(job_dir_ + "/extents", ec);
    if (ec) {
      return Status::IOError(StringPrintf("cannot create %s: %s",
                                          job_dir_.c_str(),
                                          ec.message().c_str()));
    }
    committer_ = std::make_unique<FileOutputCommitter>(job_dir_ + "/output");
    JournalRunStart run_start;
    run_start.digest = conf_.Digest();
    run_start.num_maps = conf_.num_maps;
    run_start.num_reduces = conf_.num_reduces;
    if (conf_.resume) {
      Result<std::unique_ptr<JobJournal>> journal =
          JobJournal::OpenForResume(journal_path, run_start, &replay_);
      if (!journal.ok()) {
        return Annotate(journal.status(), "resuming the job journal");
      }
      journal_ = std::move(journal).value();
      resume_active_ = true;
      result_.resumed = true;
      result_.journal_records_replayed = replay_.records_replayed;
    } else {
      Result<std::unique_ptr<JobJournal>> journal =
          JobJournal::Create(journal_path, run_start);
      if (!journal.ok()) {
        return Annotate(journal.status(), "creating the job journal");
      }
      journal_ = std::move(journal).value();
    }
    MRMB_RETURN_IF_ERROR(committer_->SetupJob());
    if (resume_active_) result_.orphans_swept += SweepJobDirOrphans();
    return Status::OK();
  }

  // GC of durable files a crashed run leaves behind but the journal's
  // valid prefix does not reference: half-written `*.tmp` extents, extents
  // of attempts whose commit record never landed, and `_temporary` staging
  // output. Runs before the store opens, so a swept extent can never be a
  // live handle's file.
  int64_t SweepJobDirOrphans() {
    namespace fs = std::filesystem;
    int64_t swept = 0;
    std::set<std::string> referenced;
    for (const auto& [task, commit] : replay_.map_commits) {
      if (commit.has_extent) referenced.insert(commit.extent.file_name);
    }
    std::error_code ec;
    for (const fs::directory_entry& entry :
         fs::directory_iterator(job_dir_ + "/extents", ec)) {
      const std::string name = entry.path().filename().string();
      if (referenced.count(name) > 0) continue;
      std::error_code remove_ec;
      if (fs::remove(entry.path(), remove_ec) && !remove_ec) ++swept;
    }
    const Result<int64_t> staging = committer_->CleanupOrphans();
    if (staging.ok()) swept += staging.value();
    return swept;
  }

  // Startup GC for plain (journal-off) spill_dir runs: store directories
  // are named mrmb-spill-<pid>-<counter>, so one whose pid no longer
  // exists was left by a crashed process and can never be reattached.
  int64_t SweepDeadSpillDirs() {
    namespace fs = std::filesystem;
    int64_t swept = 0;
    std::error_code ec;
    for (const fs::directory_entry& entry :
         fs::directory_iterator(conf_.spill_dir, ec)) {
      const std::string name = entry.path().filename().string();
      long pid = 0;
      if (std::sscanf(name.c_str(), "mrmb-spill-%ld-", &pid) != 1) continue;
      if (pid <= 0 || pid == static_cast<long>(::getpid())) continue;
      if (::kill(static_cast<pid_t>(pid), 0) == 0 || errno != ESRCH) {
        continue;  // still alive (or unknowable) — leave it
      }
      std::error_code remove_ec;
      if (fs::remove_all(entry.path(), remove_ec) > 0 && !remove_ec) ++swept;
    }
    return swept;
  }

  // Rebuilds scheduler state from the replayed journal: committed reduces
  // re-load their part files, committed maps re-adopt their durable
  // extents, and attempt numbering continues where the crash left off. A
  // task whose durable state fails verification simply stays un-adopted —
  // re-running it reproduces identical bytes by the determinism contract.
  // Runs single-threaded before the pool sees any work.
  void AdoptFromJournal() {
    for (const auto& [task, started] : replay_.map_attempts) {
      if (task >= 0 && task < conf_.num_maps) {
        slots_[static_cast<size_t>(task)].attempts_started = started;
      }
    }
    for (const auto& [task, started] : replay_.reduce_attempts) {
      if (task >= 0 && task < conf_.num_reduces) {
        reduces_[static_cast<size_t>(task)].attempts_started = started;
      }
    }
    for (const auto& [r, commit] : replay_.reduce_commits) {
      if (r < 0 || r >= conf_.num_reduces) continue;
      Result<std::vector<std::pair<std::string, std::string>>> pairs =
          LoadReducePart(committer_->CommittedPath(r), commit);
      if (!pairs.ok()) {
        // Damaged or missing part file: drop the committed name so the
        // re-run's commit can promote a fresh copy, and count the loss as
        // one more orphan swept.
        ::unlink(committer_->CommittedPath(r).c_str());
        ++result_.orphans_swept;
        continue;
      }
      ReduceShuffle& rs = reduces_[static_cast<size_t>(r)];
      rs.committed.output = std::move(pairs).value();
      rs.committed.groups = commit.groups;
      rs.completed = true;
      rs.final_scheduled = true;  // freezes fetch/final scheduling out
      reduce_adopted_[static_cast<size_t>(r)] = 1;
      ++result_.reduces_adopted;
    }
    all_reduces_adopted_ = result_.reduces_adopted == conf_.num_reduces;
    for (const auto& [m, commit] : replay_.map_commits) {
      if (m < 0 || m >= conf_.num_maps) continue;
      MapSlot& slot = slots_[static_cast<size_t>(m)];
      if (all_reduces_adopted_) {
        // Every reduce is adopted, so nothing will ever fetch map output
        // (all reduces committed implies all maps had too) — only the
        // committed attempts' counters matter.
        slot.stats = FromJournalStats(commit.stats);
        continue;
      }
      if (!commit.has_extent) continue;  // RAM-degraded: died with the run
      SpillStore::AdoptSpec spec;
      spec.file_name = commit.extent.file_name;
      spec.task = m;
      spec.attempt = commit.attempt;
      spec.file_bytes = commit.extent.file_bytes;
      spec.logical_bytes = commit.extent.logical_bytes;
      spec.partitions = commit.extent.partitions;
      Result<std::shared_ptr<const StoredSpill>> adopted = store_->Adopt(spec);
      if (!adopted.ok()) continue;  // damaged extent: the map just re-runs
      slot.stored = std::move(adopted).value();
      slot.segment.reset();
      slot.committed_gen = 0;
      slot.target_gen = 0;
      const int s = StreamOf(m);
      if (GroupSizeOf(s) == 1) {
        GroupSlot& group = groups_[static_cast<size_t>(s)];
        group.stored = slot.stored;
        group.segment.reset();
        group.committed_gen = 0;
        group.target_gen = 0;
        if (transport_server_ != nullptr) {
          transport_server_->Publish(s, 0, nullptr, group.stored);
        }
      }
      // Multi-member streams stay unpublished here: combined segments are
      // derived state (their extents were swept as orphans above), so
      // Execute rebuilds fully-adopted groups before the pool spins up and
      // partially-adopted ones rebuild when their last member re-commits.
      slot.initial_committed = true;
      slot.stats = FromJournalStats(commit.stats);
      ++initial_commits_;
      ++result_.maps_adopted;
    }
    if (all_reduces_adopted_) initial_commits_ = conf_.num_maps;
  }

  const JobConf& conf_;
  InputFormat* input_format_;
  const std::vector<InputSplit> splits_;
  const MapperFactory& mapper_factory_;
  const ReducerFactory& reducer_factory_;
  const PartitionerFactory& partitioner_factory_;
  const ReducerFactory& combiner_factory_;
  const RawComparator* comparator_;
  const LocalFaultInjector injector_;
  const int group_size_;   // node-combine block size (1 = in-node off)
  const int num_streams_;  // shuffle streams = ceil(num_maps / group_size_)
  const MergePlan plan_;
  ThreadPool pool_;
  Watchdog watchdog_;
  const int slowstart_threshold_;

  // Disk spill engine (null when off). Declared before slots_/reduces_ so
  // it outlives every StoredSpill handle they hold: handle destructors
  // release their extents back into the store. The hooks must likewise
  // outlive the store.
  std::unique_ptr<SpillIoHooks> spill_hooks_;
  std::unique_ptr<SpillStore> store_;

  // Real-socket shuffle data plane (both null with shuffle_transport =
  // inproc). Declared after store_: the server pins StoredSpill handles
  // (plus its own extent fds), so it must tear down before the store does.
  std::unique_ptr<ShuffleTransportServer> transport_server_;
  std::unique_ptr<ShuffleTransportClient> transport_client_;

  // Crash-safe job state (null/empty when the journal is off).
  std::unique_ptr<JobJournal> journal_;
  std::unique_ptr<FileOutputCommitter> committer_;
  std::string job_dir_;
  JournalReplay replay_;
  bool resume_active_ = false;
  bool all_reduces_adopted_ = false;
  std::vector<char> reduce_adopted_;  // per reduce: committed output reused
  // Set at job commit: the extents dir, removable once the job succeeded.
  std::string success_cleanup_dir_;

  std::mutex mu_;
  // crash_at occurrence counters, indexed by CrashEvent (guarded by mu_).
  int64_t crash_counts_[4] = {0, 0, 0, 0};
  std::condition_variable cv_;
  std::vector<MapSlot> slots_;
  std::vector<GroupSlot> groups_;  // per shuffle stream, guarded by mu_
  std::vector<ReduceShuffle> reduces_;
  // Combine CPU outside map attempts (guarded by mu_): reduce-side fold
  // combines and in-node builds.
  double combine_reduce_seconds_ = 0;
  double combine_node_seconds_ = 0;
  int initial_commits_ = 0;
  bool reduces_launched_ = false;
  bool map_phase_done_ = false;
  Clock::time_point launch_time_{};
  Clock::time_point map_phase_end_{};
  bool job_failed_ = false;
  Status job_error_;
  double shuffle_merge_busy_ = 0;
  double reduce_compute_busy_ = 0;
  double shuffle_wait_busy_ = 0;
  double overlap_busy_ = 0;
  LocalJobResult result_;
};

Status PipelinedJob::Execute(OutputFormat* output_format,
                             LocalJobResult* result) {
  const auto start = Clock::now();
  if (conf_.journal_enabled()) {
    MRMB_RETURN_IF_ERROR(SetupCrashSafety());
  } else if (!conf_.spill_dir.empty()) {
    result_.orphans_swept += SweepDeadSpillDirs();
  }
  if (conf_.spill_engine_enabled()) {
    spill_hooks_ = std::make_unique<LocalSpillIoHooks>(conf_.local_fault_plan,
                                                       conf_.seed);
    SpillStoreOptions options;
    // Journaled jobs keep extents in the job's own durable directory so
    // they survive the process and resume can re-adopt them by name.
    options.dir = journal_ != nullptr ? job_dir_ + "/extents" : conf_.spill_dir;
    options.exact_dir = journal_ != nullptr;
    options.durable = journal_ != nullptr;
    options.cache_bytes = conf_.spill_cache_bytes;
    options.block_bytes = conf_.spill_block_bytes;
    // Extents reuse the map-output codec for their blocks; kNone still
    // writes CRC-framed (stored) blocks, so scrub/repair work either way.
    options.block_codec = conf_.effective_map_output_codec();
    options.scrub_after_seal = conf_.spill_scrub;
    options.use_mmap = conf_.spill_mmap;
    Result<std::unique_ptr<SpillStore>> store =
        SpillStore::Open(options, spill_hooks_.get());
    if (!store.ok()) {
      return Annotate(store.status(), "opening the spill store");
    }
    store_ = std::move(store).value();
  }
  if (conf_.shuffle_transport == ShuffleTransport::kTcp) {
    ShuffleTransportServer::Options server_options;
    server_options.job_digest = conf_.Digest();
    server_options.reactors = conf_.shuffle_server_reactors;
    server_options.socket_buffer_bytes = conf_.shuffle_socket_buffer_bytes;
    // The hook runs on the epoll thread and only touches the (immutable)
    // injector — it must never take mu_, or Publish-under-mu_ would
    // deadlock against a concurrent fetch.
    server_options.fault_hook = [this](int map,
                                       int64_t fetch_seq) -> TransportFault {
      if (injector_.DropConnAt(map, fetch_seq)) {
        return TransportFault::kDropConn;
      }
      if (injector_.TruncFrameAt(map, fetch_seq)) {
        return TransportFault::kTruncFrame;
      }
      return TransportFault::kNone;
    };
    Result<std::unique_ptr<ShuffleTransportServer>> server =
        ShuffleTransportServer::Start(server_options);
    if (!server.ok()) {
      return Annotate(server.status(), "starting the shuffle transport");
    }
    transport_server_ = std::move(server).value();
    ShuffleTransportClient::Options client_options;
    client_options.job_digest = conf_.Digest();
    client_options.port = transport_server_->port();
    client_options.parallel_streams = conf_.fetch_parallel_streams;
    client_options.protocol_version = conf_.shuffle_protocol_version;
    client_options.window_init = conf_.fetch_window_init;
    client_options.window_max = conf_.fetch_window_max;
    client_options.max_attempts = kTransportFetchAttempts;
    client_options.socket_buffer_bytes = conf_.shuffle_socket_buffer_bytes;
    client_options.delay_ms_hook = [this](int map, int64_t fetch_seq) {
      return injector_.SlowPeerDelayMs(map, fetch_seq);
    };
    transport_client_ =
        std::make_unique<ShuffleTransportClient>(client_options);
    result_.transport_enabled = true;
  }
  bool crashed_at_start = false;
  if (journal_ != nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    crashed_at_start = MaybeCrashLocked(CrashEvent::kJobStart);
  }
  if (!crashed_at_start && resume_active_) AdoptFromJournal();
  if (!crashed_at_start && !all_reduces_adopted_ && group_size_ > 1) {
    // Rebuild the node-combined segment of every fully-adopted group now,
    // single-threaded, before any pool work: the combined extents were
    // swept as orphans, and a group whose members all adopted will never
    // see another member commit to trigger the build.
    for (int s = 0; s < num_streams_; ++s) {
      if (GroupSizeOf(s) == 1 || !AllMembersCurrentLocked(s)) continue;
      {
        std::lock_guard<std::mutex> lock(mu_);
        groups_[static_cast<size_t>(s)].building = true;
      }
      BuildGroup(s);
      if (JobFailed()) break;
    }
  }
  if (!crashed_at_start && !all_reduces_adopted_) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (initial_commits_ == conf_.num_maps && initial_commits_ > 0) {
        // Every map adopted: the map phase happened in a previous life.
        map_phase_done_ = true;
        map_phase_end_ = Clock::now();
      }
      if (!reduces_launched_ && initial_commits_ >= slowstart_threshold_) {
        LaunchReducesLocked();
      }
    }
    for (int m = 0; m < conf_.num_maps; ++m) {
      if (slots_[static_cast<size_t>(m)].committed_gen >= 0) continue;
      pool_.Submit(kMapLane, [this, m] { MapTaskMain(m); });
    }
    pool_.Wait();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (job_failed_) return job_error_;
  }
  for (const ReduceShuffle& rs : reduces_) {
    // Every reduce must have run its final task by now; anything else is a
    // scheduler bug, not a recoverable condition.
    MRMB_CHECK(rs.completed);
  }

  *result = std::move(result_);
  const size_t num_maps = static_cast<size_t>(conf_.num_maps);
  const size_t num_reduces = static_cast<size_t>(conf_.num_reduces);
  result->reducer_input_records.assign(num_reduces, 0);
  result->reducer_input_bytes.assign(num_reduces, 0);
  for (size_t m = 0; m < num_maps; ++m) {
    const MapTaskStats& stats = slots_[m].stats;
    result->map_input_records += stats.input_records;
    result->map_output_records += stats.output_records;
    result->spill_count += stats.spill_count;
    result->combine_removed_records += stats.combine_removed;
    result->map_output_bytes += stats.output_bytes;
    result->map_output_wire_bytes += stats.wire_bytes;
    result->spilled_bytes += stats.spilled_bytes;
    result->spill_extents += stats.spill_extents;
    result->spill_degradations += stats.spill_degradations;
    result->combine_spill_input_records += stats.combine.spill_input_records;
    result->combine_spill_output_records +=
        stats.combine.spill_output_records;
    result->combine_spill_input_bytes += stats.combine.spill_input_bytes;
    result->combine_spill_output_bytes += stats.combine.spill_output_bytes;
    result->combine_merge_input_records += stats.combine.merge_input_records;
    result->combine_merge_output_records +=
        stats.combine.merge_output_records;
    result->combine_merge_input_bytes += stats.combine.merge_input_bytes;
    result->combine_merge_output_bytes += stats.combine.merge_output_bytes;
    result->combine_seconds +=
        static_cast<double>(stats.combine.combine_micros) / 1e6;
  }
  // Reduce-side fold combines and in-node builds were accumulated live
  // (they are job-level, not per-attempt, work).
  result->combine_seconds += combine_reduce_seconds_ + combine_node_seconds_;
  result->shuffle_streams = num_streams_;
  if (store_ != nullptr) {
    // Store-wide counters (covers failed attempts' extents too, which the
    // per-committed-attempt sums above deliberately exclude).
    result->spill_engine_enabled = true;
    const SpillStoreStats ss = store_->stats();
    result->spill_cache_hits = ss.cache_hits;
    result->spill_cache_misses = ss.cache_misses;
    result->spill_cache_evictions = ss.cache_evictions;
    result->spill_blocks_repaired = ss.blocks_repaired;
    result->spill_blocks_lost = ss.blocks_lost;
    result->spill_short_reads = ss.short_reads;
    result->spill_read_errors = ss.read_errors;
    result->spill_scrubbed_blocks = ss.scrubbed_blocks;
    const int64_t lookups = ss.cache_hits + ss.cache_misses;
    result->spill_cache_hit_rate =
        lookups > 0 ? static_cast<double>(ss.cache_hits) /
                          static_cast<double>(lookups)
                    : 0.0;
  }
  if (transport_client_ != nullptr) {
    // All fetch traffic is done (the pool drained above); snapshot the data
    // plane's counters, then tear it down before the store goes away.
    const ShuffleClientStats client_stats = transport_client_->stats();
    result->transport_fetch_rpcs = client_stats.rpcs;
    result->transport_fetched_partitions = client_stats.fetches;
    result->transport_batches = client_stats.batches;
    result->transport_wire_bytes = client_stats.wire_bytes;
    // The batched client retries internally; fold its retransmits into the
    // runner-side (v1 path) count.
    result->transport_retransmits += client_stats.retransmits;
    result->transport_reconnects = client_stats.reconnects;
    result->transport_pool_hit_rate = client_stats.pool_hit_rate;
    result->transport_window_peak = client_stats.window_peak;
    result->transport_fetch_mean_ms = client_stats.fetch_mean_ms;
    result->transport_fetch_p99_ms = client_stats.fetch_p99_ms;
    const ShuffleServerStats server_stats = transport_server_->stats();
    result->transport_stale_refusals =
        server_stats.stale_refused + server_stats.not_found;
    result->transport_ram_serves = server_stats.ram_serves;
    result->transport_file_serves = server_stats.file_serves;
    transport_client_.reset();
    transport_server_.reset();
  }
  result->map_output_compression_ratio =
      result->map_output_bytes > 0
          ? static_cast<double>(result->map_output_wire_bytes) /
                static_cast<double>(result->map_output_bytes)
          : 1.0;
  // Wire bytes the shuffle serves at the final generations. Without
  // in-node combining every stream aliases one map output, so this equals
  // map_output_wire_bytes; with it, the combined segments' (smaller)
  // footprint is the extra cut the in-node stage buys on top of the
  // map-side stages. An all-adopted resume never populated the streams —
  // no shuffle happened, so the serve side degenerates to the wire bytes.
  bool streams_live = true;
  for (const GroupSlot& group : groups_) {
    if (group.committed_gen < 0) {
      streams_live = false;
      break;
    }
  }
  if (streams_live) {
    for (const GroupSlot& group : groups_) {
      const std::vector<SpillSegment::PartitionRange>& parts =
          group.stored != nullptr ? group.stored->partitions()
                                  : group.segment->partitions;
      for (const SpillSegment::PartitionRange& range : parts) {
        result->shuffle_serve_bytes += range.length;
      }
    }
  } else {
    result->shuffle_serve_bytes = result->map_output_wire_bytes;
  }
  result->shuffle_savings_ratio =
      result->map_output_wire_bytes > 0
          ? 1.0 - static_cast<double>(result->shuffle_serve_bytes) /
                      static_cast<double>(result->map_output_wire_bytes)
          : 0.0;
  // Commit: write staged reduce output in task order from this (the
  // coordinating) thread — failed attempts never reached here, so the
  // OutputFormat only ever sees complete, committed task output. The
  // fingerprint folds each reduce's identity, group/pair counts, and
  // length-framed output bytes, so byte-identity across runs (including
  // crashed-then-resumed ones) is one integer comparison.
  uint32_t fingerprint = kCrc32cInit;
  std::string fp_frame;
  BufferWriter fp_writer(&fp_frame);
  for (size_t r = 0; r < num_reduces; ++r) {
    if (reduce_adopted_[r] != 0) {
      // Adopted reduces report the shuffle load recorded at their original
      // commit — no map output need exist in this process at all.
      const JournalReduceCommit& commit =
          replay_.reduce_commits.at(static_cast<int>(r));
      result->reducer_input_records[r] = commit.input_records;
      result->reducer_input_bytes[r] = commit.input_bytes;
    } else {
      for (size_t s = 0; s < static_cast<size_t>(num_streams_); ++s) {
        const GroupSlot& group = groups_[s];
        const SpillSegment::PartitionRange& range =
            group.stored != nullptr ? group.stored->partitions()[r]
                                    : group.segment->partitions[r];
        result->reducer_input_records[r] += range.records;
        // Logical (decompressed) bytes: what the reducer merge consumed, so
        // the counter is codec-invariant; the wire side lives in
        // map_output_wire_bytes / map_output_compression_ratio.
        result->reducer_input_bytes[r] += range.raw_bytes();
      }
    }
    result->reduce_groups += reduces_[r].committed.groups;
    fp_writer.Clear();
    fp_writer.AppendFixed32(static_cast<uint32_t>(r));
    fp_writer.AppendFixed64(
        static_cast<uint64_t>(reduces_[r].committed.groups));
    fp_writer.AppendFixed64(
        static_cast<uint64_t>(reduces_[r].committed.output.size()));
    fingerprint = Crc32c(fingerprint, fp_frame);
    std::unique_ptr<RecordWriter> writer =
        output_format->CreateWriter(conf_, static_cast<int>(r));
    for (const auto& [key, value] : reduces_[r].committed.output) {
      writer->Write(key, value);
      fp_writer.Clear();
      fp_writer.AppendVarint64(static_cast<int64_t>(key.size()));
      fp_writer.AppendVarint64(static_cast<int64_t>(value.size()));
      fingerprint = Crc32c(fingerprint, fp_frame);
      fingerprint = Crc32c(fingerprint, key);
      fingerprint = Crc32c(fingerprint, value);
      result->output_records += 1;
      result->output_bytes += static_cast<int64_t>(key.size() + value.size());
    }
    MRMB_RETURN_IF_ERROR(writer->Close());
  }
  result->output_fingerprint = fingerprint;
  for (int64_t records : result->reducer_input_records) {
    result->reduce_input_records += records;
  }

  if (journal_ != nullptr) {
    // Job commit: seal the output directory (drop `_temporary`, write
    // `_SUCCESS`), then log it. A crash_at:job_commit point fires with the
    // job actually complete — resuming it must be a no-op.
    MRMB_RETURN_IF_ERROR(committer_->CommitJob());
    const Status appended = journal_->AppendJobCommit();
    if (!appended.ok()) return Annotate(appended, "job journal append");
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (MaybeCrashLocked(CrashEvent::kJobCommit)) return job_error_;
    }
    success_cleanup_dir_ = job_dir_ + "/extents";
    result->journal_records_appended = journal_->records_appended();
  }

  // Phase breakdown. shuffle_wait = reduce-side lifetime not spent busy:
  // from launch until the final task started, minus the fetch/merge work
  // actually done, plus any explicit re-fetch waits.
  result->map_phase_seconds =
      map_phase_done_ ? Seconds(map_phase_end_ - start) : 0;
  result->shuffle_merge_seconds = shuffle_merge_busy_;
  result->reduce_compute_seconds = reduce_compute_busy_;
  double wait = shuffle_wait_busy_;
  for (const ReduceShuffle& rs : reduces_) {
    const double lifetime = Seconds(rs.final_start - launch_time_);
    wait += std::max(0.0, lifetime - rs.drain_busy_seconds);
  }
  result->shuffle_wait_seconds = wait;
  const double busy = shuffle_merge_busy_ + reduce_compute_busy_;
  result->overlap_efficiency = busy > 0 ? overlap_busy_ / busy : 0;

  result->wall_seconds = Seconds(Clock::now() - start);
  return Status::OK();
}

}  // namespace

LocalJobRunner::LocalJobRunner(JobConf conf) : conf_(std::move(conf)) {}

Result<LocalJobResult> LocalJobRunner::Run(
    InputFormat* input_format, const MapperFactory& mapper_factory,
    const ReducerFactory& reducer_factory, OutputFormat* output_format,
    const PartitionerFactory& partitioner_factory,
    const ReducerFactory& combiner_factory) {
  MRMB_RETURN_IF_ERROR(conf_.Validate());
  MRMB_CHECK(input_format != nullptr);
  MRMB_CHECK(output_format != nullptr);

  std::vector<InputSplit> splits =
      input_format->GetSplits(conf_, conf_.num_maps);
  if (static_cast<int>(splits.size()) != conf_.num_maps) {
    return Status::Internal("input format returned wrong split count");
  }

  LocalJobResult result;
  std::string cleanup_dir;
  {
    PipelinedJob job(conf_, input_format, std::move(splits), mapper_factory,
                     reducer_factory, partitioner_factory, combiner_factory);
    MRMB_RETURN_IF_ERROR(job.Execute(output_format, &result));
    cleanup_dir = job.success_cleanup_dir();
  }
  if (!cleanup_dir.empty()) {
    // The job committed: its extents are dead weight now (resume replays
    // committed part files, never extents), but the journal and the output
    // directory stay, so resuming a completed job is a cheap no-op. The
    // store — and every extent handle — died with the PipelinedJob above.
    std::error_code ec;
    std::filesystem::remove_all(cleanup_dir, ec);
  }
  return result;
}

Result<LocalJobResult> LocalJobRunner::RunStandalone(const JobConf& conf) {
  LocalJobRunner runner(conf);
  NullInputFormat input;
  NullOutputFormat output;
  // With a built-in combiner selected, the final reducer aggregates the
  // same way (one (key, sum) pair per group): the job output — and its
  // fingerprint — is then invariant to how much combining happened at any
  // stage, which is what lets benchmarks pin correctness across the
  // combine ablation. Without one, the classic discarding reducer stands.
  ReducerFactory reducer =
      conf.combiner == CombinerKind::kSum
          ? ReducerFactory(
                [](int) { return std::make_unique<SummingReducer>(); })
          : ReducerFactory(
                [](int) { return std::make_unique<DiscardingReducer>(); });
  return runner.Run(
      &input,
      [&conf](int task_id) {
        return std::make_unique<GeneratingMapper>(conf, task_id);
      },
      reducer, &output, /*partitioner_factory=*/nullptr,
      MakeBuiltinCombiner(conf.combiner));
}

}  // namespace mrmb
