// Intermediate-data compression codec (mapred.compress.map.output).
//
// Hadoop can compress map output before it hits disk and the wire, trading
// CPU for bytes — the same trade the paper's data-type discussion makes
// ("reducing the sheer number of bytes taken up by the intermediate data
// can provide a substantial performance gain", Sect. 3). This is a real
// DEFLATE codec (zlib, level 1 like Hadoop's speed-oriented defaults); the
// cluster simulation measures the actual compression ratio of a sample of
// the generated records and models the byte/CPU trade from it.

#ifndef MRMB_IO_CODEC_H_
#define MRMB_IO_CODEC_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace mrmb {

// Compresses `input` with DEFLATE level 1 into *out (overwritten).
Status DeflateCompress(std::string_view input, std::string* out);

// Inflates `input` into *out (overwritten). Fails on corrupt data.
Status DeflateDecompress(std::string_view input, std::string* out);

// Compressed-size / raw-size ratio of `sample` (1.0 for empty input).
// Values near (or above) 1.0 mean incompressible data.
double MeasureCompressionRatio(std::string_view sample);

}  // namespace mrmb

#endif  // MRMB_IO_CODEC_H_
