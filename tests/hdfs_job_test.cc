// Tests for HDFS-involved jobs (the Sort shape the paper contrasts with
// stand-alone MapReduce): DFS input streaming with data-locality
// scheduling, and replicated DFS output.

#include <gtest/gtest.h>

#include "mapred/sim_runner.h"
#include "net/network_profile.h"

namespace mrmb {
namespace {

JobConf SortShapedJob() {
  JobConf conf;
  conf.num_maps = 16;
  conf.num_reduces = 8;
  conf.record.key_size = 512;
  conf.record.value_size = 512;
  conf.record.num_unique_keys = 8;
  // ~1 GB total so several DFS blocks per job.
  conf.records_per_map = (1024LL * 1024 * 1024) / (1038 * 16);
  conf.map_slots_per_node = 4;
  conf.reduce_slots_per_node = 2;
  conf.dfs_block_bytes = 64LL * 1024 * 1024;
  conf.seed = 42;
  return conf;
}

Result<SimJobResult> RunOn(const JobConf& conf, int slaves = 4) {
  SimCluster cluster(ClusterA(IpoibQdr(), slaves));
  SimJobRunner runner(&cluster, conf);
  return runner.Run();
}

TEST(HdfsJobTest, DfsInputJobCompletes) {
  JobConf conf = SortShapedJob();
  conf.read_input_from_dfs = true;
  auto result = RunOn(conf);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->job_seconds, 0);
  EXPECT_GT(result->dfs_disk_bytes, 0);
}

TEST(HdfsJobTest, DfsInputSlowerThanStandalone) {
  JobConf standalone = SortShapedJob();
  JobConf hdfs = SortShapedJob();
  hdfs.read_input_from_dfs = true;
  auto fast = RunOn(standalone);
  auto slow = RunOn(hdfs);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_GT(slow->job_seconds, fast->job_seconds);
}

TEST(HdfsJobTest, LocalitySchedulingFindsReplicas) {
  JobConf conf = SortShapedJob();
  conf.read_input_from_dfs = true;
  conf.dfs_replication = 3;
  auto result = RunOn(conf);
  ASSERT_TRUE(result.ok());
  // With 3 replicas over 4 nodes and locality-aware assignment, the large
  // majority of maps run data-local.
  EXPECT_GE(result->data_local_maps, (conf.num_maps * 3) / 4);
}

TEST(HdfsJobTest, MoreReplicasMoreLocality) {
  JobConf one = SortShapedJob();
  one.read_input_from_dfs = true;
  one.dfs_replication = 1;
  JobConf three = SortShapedJob();
  three.read_input_from_dfs = true;
  three.dfs_replication = 3;
  auto r1 = RunOn(one, 8);
  auto r3 = RunOn(three, 8);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r3.ok());
  EXPECT_GE(r3->data_local_maps, r1->data_local_maps);
}

TEST(HdfsJobTest, DfsOutputRunsReplicationPipeline) {
  JobConf conf = SortShapedJob();
  conf.write_output_to_dfs = true;
  conf.dfs_replication = 3;
  auto result = RunOn(conf);
  ASSERT_TRUE(result.ok());
  // Output = shuffle bytes; disk sees replication x output.
  EXPECT_NEAR(static_cast<double>(result->dfs_disk_bytes),
              3.0 * static_cast<double>(result->total_shuffle_bytes),
              static_cast<double>(result->total_shuffle_bytes) * 0.05);
  // At least (replication-1)/replication of the pipeline crosses the wire.
  EXPECT_GT(result->dfs_network_bytes, result->total_shuffle_bytes);
}

TEST(HdfsJobTest, OutputRatioScalesPipeline) {
  JobConf full = SortShapedJob();
  full.write_output_to_dfs = true;
  JobConf tiny = SortShapedJob();
  tiny.write_output_to_dfs = true;
  tiny.output_to_input_ratio = 0.01;  // aggregation-style job
  auto full_result = RunOn(full);
  auto tiny_result = RunOn(tiny);
  ASSERT_TRUE(full_result.ok());
  ASSERT_TRUE(tiny_result.ok());
  EXPECT_LT(tiny_result->dfs_disk_bytes, full_result->dfs_disk_bytes / 50);
  EXPECT_LT(tiny_result->job_seconds, full_result->job_seconds);
}

TEST(HdfsJobTest, FullSortShapeCostsMostAndStaysDeterministic) {
  JobConf sort = SortShapedJob();
  sort.read_input_from_dfs = true;
  sort.write_output_to_dfs = true;
  auto a = RunOn(sort);
  auto b = RunOn(sort);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->finish_time, b->finish_time);
  EXPECT_EQ(a->dfs_network_bytes, b->dfs_network_bytes);

  JobConf standalone = SortShapedJob();
  auto bare = RunOn(standalone);
  ASSERT_TRUE(bare.ok());
  EXPECT_GT(a->job_seconds, bare->job_seconds * 1.2);
}

TEST(HdfsJobTest, HdfsInterferenceDistortsNetworkComparison) {
  // The paper's motivation: HDFS involvement "interferes in the evaluation
  // of the performance benefits of new designs for MapReduce". Measure the
  // 1GigE -> IPoIB improvement with and without HDFS: the HDFS-involved
  // job shows a *different* (here: larger, since replication adds network
  // traffic) improvement, i.e. the DFS skews exactly what the suite wants
  // to isolate.
  auto time_for = [&](bool hdfs, const NetworkProfile& network) {
    JobConf conf = SortShapedJob();
    conf.read_input_from_dfs = hdfs;
    conf.write_output_to_dfs = hdfs;
    SimCluster cluster(ClusterA(network, 4));
    SimJobRunner runner(&cluster, conf);
    auto result = runner.Run();
    EXPECT_TRUE(result.ok());
    return result->job_seconds;
  };
  const double bare_gain =
      (time_for(false, OneGigE()) - time_for(false, IpoibQdr())) /
      time_for(false, OneGigE());
  const double hdfs_gain =
      (time_for(true, OneGigE()) - time_for(true, IpoibQdr())) /
      time_for(true, OneGigE());
  EXPECT_GT(std::abs(hdfs_gain - bare_gain), 0.02);
}

TEST(HdfsJobTest, InvalidDfsConfRejected) {
  JobConf conf = SortShapedJob();
  conf.dfs_block_bytes = 0;
  EXPECT_FALSE(conf.Validate().ok());
  conf = SortShapedJob();
  conf.dfs_replication = 0;
  EXPECT_FALSE(conf.Validate().ok());
  conf = SortShapedJob();
  conf.output_to_input_ratio = -1;
  EXPECT_FALSE(conf.Validate().ok());
}

}  // namespace
}  // namespace mrmb
