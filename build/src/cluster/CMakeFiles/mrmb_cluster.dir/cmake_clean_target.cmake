file(REMOVE_RECURSE
  "libmrmb_cluster.a"
)
