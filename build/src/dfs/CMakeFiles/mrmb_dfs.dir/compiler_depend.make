# Empty compiler generated dependencies file for mrmb_dfs.
# This may be replaced when dependencies are built.
