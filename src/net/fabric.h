// Flow-level model of a switched cluster interconnect.
//
// Every node has a full-duplex NIC (independent ingress and egress capacity
// equal to the profile's application bandwidth). Concurrent transfers share
// the fabric max-min fairly, each constrained by its source's egress, its
// destination's ingress, and optionally an aggregate switch backplane
// (oversubscription < 1.0 models a blocking switch).
//
// A Transfer completes after
//     per_message_overhead + <fluid transfer under fair sharing> + latency.
// Host CPU cost per byte is *not* modeled here; the MapReduce simulation
// charges it to the task CPU via the profile's cpu_per_byte fields, so it
// contends with application compute exactly as a kernel TCP stack would.

#ifndef MRMB_NET_FABRIC_H_
#define MRMB_NET_FABRIC_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/network_profile.h"
#include "sim/fluid.h"
#include "sim/simulator.h"

namespace mrmb {

class Fabric {
 public:
  using CompletionFn = std::function<void(SimTime)>;

  // `oversubscription` scales the aggregate backplane: 1.0 = full bisection
  // bandwidth (non-blocking switch), 0.5 = backplane carries only half of
  // the sum of NIC rates.
  Fabric(Simulator* sim, int num_nodes, NetworkProfile profile,
         double oversubscription = 1.0);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  // Starts transferring `bytes` from `src` to `dst`; `on_complete` fires
  // once the last byte has arrived (including latency). Local transfers
  // (src == dst) skip the fabric and complete after a fast memcpy-rate copy.
  void Transfer(int src, int dst, int64_t bytes, CompletionFn on_complete);

  // Cumulative payload bytes received by / sent from `node` (fluid view;
  // excludes in-flight remainder).
  double RxBytes(int node);
  double TxBytes(int node);

  // Scales `node`'s NIC capacity (both directions) by `factor` (> 0) from
  // the current simulated time onward; in-flight transfers are re-paced
  // immediately. Used by fault plans to model degraded or repaired links.
  void SetLinkFactor(int node, double factor);
  double LinkFactor(int node) const {
    return link_factor_[static_cast<size_t>(node)];
  }

  int num_nodes() const { return num_nodes_; }
  const NetworkProfile& profile() const { return profile_; }
  size_t active_transfers() const { return pool_->active_flows(); }

 private:
  void Solve(std::vector<FluidFlow*>* flows);

  Simulator* sim_;
  int num_nodes_;
  NetworkProfile profile_;
  double backplane_capacity_;  // bytes/sec; <= 0 disables the constraint.
  std::vector<double> link_factor_;  // per-node NIC capacity multiplier
  std::unique_ptr<FluidPool> pool_;
};

}  // namespace mrmb

#endif  // MRMB_NET_FABRIC_H_
