#include "io/merge.h"

#include <utility>

#include "common/logging.h"
#include "io/byte_buffer.h"
#include "io/key_prefix.h"

namespace mrmb {

SegmentReader::SegmentReader(std::string_view data) : data_(data) {
  Decode();
}

SegmentReader::SegmentReader(std::string_view data, DataType key_type)
    : data_(data), validate_keys_(true), key_type_(key_type) {
  Decode();
}

void SegmentReader::Next() {
  MRMB_CHECK(valid_);
  Decode();
}

void SegmentReader::Decode() {
  if (pos_ >= data_.size()) {
    valid_ = false;
    key_ = {};
    value_ = {};
    return;
  }
  const auto fail = [this](const char* what) {
    valid_ = false;
    key_ = {};
    value_ = {};
    status_ = Status::DataLoss(std::string(what) + " at segment offset " +
                               std::to_string(pos_));
  };
  int64_t key_len = 0, value_len = 0;
  size_t hdr = 0;
  if (!DecodeVarint64(data_.substr(pos_), &key_len, &hdr).ok()) {
    return fail("malformed key-length varint");
  }
  pos_ += hdr;
  if (!DecodeVarint64(data_.substr(pos_), &value_len, &hdr).ok()) {
    return fail("malformed value-length varint");
  }
  pos_ += hdr;
  if (key_len < 0 || value_len < 0 ||
      static_cast<size_t>(key_len) > data_.size() - pos_ ||
      static_cast<size_t>(value_len) >
          data_.size() - pos_ - static_cast<size_t>(key_len)) {
    return fail("truncated record frame");
  }
  key_ = data_.substr(pos_, static_cast<size_t>(key_len));
  if (validate_keys_ && !KeyWireFormatValid(key_type_, key_)) {
    return fail("malformed key wire format");
  }
  pos_ += static_cast<size_t>(key_len);
  value_ = data_.substr(pos_, static_cast<size_t>(value_len));
  pos_ += static_cast<size_t>(value_len);
  valid_ = true;
}

// The tree is the implicit complete binary tree over 2k slots: leaves live
// at positions k..2k-1 (leaf i at k+i), internal nodes at 1..k-1, parent(p)
// = p/2. losers_[node] holds the leaf index that *lost* the match at that
// node; the overall winner is kept in winner_. Advancing the winner only
// replays the k+winner -> root path: one comparison per level against the
// stored losers, about half of what a binary-heap sift-down costs.
MergeIterator::MergeIterator(
    std::vector<std::unique_ptr<RecordStream>> inputs,
    const RawComparator* comparator)
    : inputs_(std::move(inputs)),
      comparator_(comparator),
      key_type_(comparator != nullptr ? comparator->type()
                                      : DataType::kBytesWritable),
      prefix_decisive_(comparator != nullptr && PrefixIsDecisive(key_type_)) {
  MRMB_CHECK(comparator_ != nullptr);
  const size_t k = inputs_.size();
  leaves_.resize(k);
  for (size_t i = 0; i < k; ++i) {
    leaves_[i].stream = inputs_[i].get();
    if (!inputs_[i]->stable_views()) stable_views_ = false;
    RefreshLeaf(static_cast<int32_t>(i));
  }
  if (k == 1) {
    winner_ = 0;
  } else if (k > 1) {
    losers_.assign(k, -1);
    winner_ = InitSubtree(1);
  }
}

std::string_view MergeIterator::key() const {
  MRMB_CHECK(Valid());
  return leaves_[static_cast<size_t>(winner_)].key;
}

std::string_view MergeIterator::value() const {
  MRMB_CHECK(Valid());
  return leaves_[static_cast<size_t>(winner_)].stream->value();
}

void MergeIterator::Next() {
  MRMB_CHECK(Valid());
  Leaf& leaf = leaves_[static_cast<size_t>(winner_)];
  leaf.stream->Next();
  RefreshLeaf(winner_);
  if (!losers_.empty()) Replay(winner_);
}

Status MergeIterator::status() const {
  for (const std::unique_ptr<RecordStream>& input : inputs_) {
    Status status = input->status();
    if (!status.ok()) return status;
  }
  return Status::OK();
}

bool MergeIterator::Beats(int32_t a, int32_t b) const {
  const Leaf& la = leaves_[static_cast<size_t>(a)];
  const Leaf& lb = leaves_[static_cast<size_t>(b)];
  if (!la.valid || !lb.valid) {
    // An exhausted stream is a +infinity key; two of them tie on index.
    if (la.valid != lb.valid) return la.valid;
    return a < b;
  }
  if (la.prefix != lb.prefix) return la.prefix < lb.prefix;
  if (!prefix_decisive_) {
    const int cmp = comparator_->Compare(la.key, lb.key);
    if (cmp != 0) return cmp < 0;
  }
  return a < b;
}

void MergeIterator::RefreshLeaf(int32_t leaf) {
  Leaf& l = leaves_[static_cast<size_t>(leaf)];
  if (l.stream->Valid()) {
    l.key = l.stream->key();
    l.prefix = NormalizedKeyPrefix(key_type_, l.key);
    l.valid = true;
  } else {
    l.key = {};
    l.prefix = 0;
    l.valid = false;
  }
}

int32_t MergeIterator::InitSubtree(size_t node) {
  const size_t k = leaves_.size();
  if (node >= k) return static_cast<int32_t>(node - k);  // a leaf slot
  const int32_t a = InitSubtree(2 * node);
  const int32_t b = InitSubtree(2 * node + 1);
  if (Beats(a, b)) {
    losers_[node] = b;
    return a;
  }
  losers_[node] = a;
  return b;
}

void MergeIterator::Replay(int32_t leaf) {
  const size_t k = leaves_.size();
  int32_t cur = leaf;
  for (size_t node = (k + static_cast<size_t>(leaf)) / 2; node >= 1;
       node /= 2) {
    if (Beats(losers_[node], cur)) std::swap(losers_[node], cur);
  }
  winner_ = cur;
}

GroupedIterator::GroupedIterator(RecordStream* stream,
                                 const RawComparator* comparator)
    : stream_(stream),
      comparator_(comparator),
      stable_views_(stream != nullptr && stream->stable_views()) {
  MRMB_CHECK(stream_ != nullptr);
  MRMB_CHECK(comparator_ != nullptr);
}

void GroupedIterator::PinGroupKey() {
  if (pinned_) return;
  owned_key_.assign(group_key_);
  group_key_ = owned_key_;
  pinned_ = true;
}

bool GroupedIterator::NextGroup() {
  if (in_group_) {
    // Caller abandoned the group mid-way: skip its remaining values.
    PinGroupKey();
    while (stream_->Valid() &&
           comparator_->Compare(stream_->key(), group_key_) == 0) {
      stream_->Next();
    }
    in_group_ = false;
  }
  if (!stream_->Valid()) return false;
  group_key_ = stream_->key();
  pinned_ = stable_views_;  // stable streams never invalidate the view
  in_group_ = true;
  first_value_pending_ = true;
  return true;
}

bool GroupedIterator::NextValue() {
  if (!in_group_) return false;
  if (first_value_pending_) {
    first_value_pending_ = false;
    return true;
  }
  PinGroupKey();
  stream_->Next();
  if (stream_->Valid() &&
      comparator_->Compare(stream_->key(), group_key_) == 0) {
    return true;
  }
  // Stream now rests on the next group's first record (or at end).
  in_group_ = false;
  return false;
}

}  // namespace mrmb
