#include "io/codec.h"

#include <zlib.h>

#include "common/logging.h"

namespace mrmb {

Status DeflateCompress(std::string_view input, std::string* out) {
  out->clear();
  const uLong bound = compressBound(static_cast<uLong>(input.size()));
  out->resize(bound);
  uLongf out_len = bound;
  const int rc = compress2(
      reinterpret_cast<Bytef*>(out->data()), &out_len,
      reinterpret_cast<const Bytef*>(input.data()),
      static_cast<uLong>(input.size()), /*level=*/1);
  if (rc != Z_OK) {
    out->clear();
    return Status::Internal("deflate failed: zlib rc " + std::to_string(rc));
  }
  out->resize(out_len);
  return Status::OK();
}

Status DeflateDecompress(std::string_view input, std::string* out) {
  out->clear();
  // Grow the output buffer geometrically until inflate fits.
  size_t capacity = std::max<size_t>(64, input.size() * 4);
  for (int attempt = 0; attempt < 8; ++attempt) {
    out->resize(capacity);
    uLongf out_len = static_cast<uLongf>(capacity);
    const int rc = uncompress(
        reinterpret_cast<Bytef*>(out->data()), &out_len,
        reinterpret_cast<const Bytef*>(input.data()),
        static_cast<uLong>(input.size()));
    if (rc == Z_OK) {
      out->resize(out_len);
      return Status::OK();
    }
    if (rc == Z_BUF_ERROR) {
      capacity *= 4;
      continue;
    }
    out->clear();
    return Status::InvalidArgument("inflate failed: zlib rc " +
                                   std::to_string(rc));
  }
  out->clear();
  return Status::ResourceExhausted("inflate output too large");
}

double MeasureCompressionRatio(std::string_view sample) {
  if (sample.empty()) return 1.0;
  std::string compressed;
  const Status status = DeflateCompress(sample, &compressed);
  MRMB_CHECK_OK(status);
  return static_cast<double>(compressed.size()) /
         static_cast<double>(sample.size());
}

}  // namespace mrmb
