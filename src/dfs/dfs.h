// HDFS-lite: a distributed-filesystem model for the cluster simulation.
//
// The paper's whole motivation is that "commonly used benchmarks in Hadoop,
// such as Sort and TeraSort, usually require the involvement of HDFS [whose]
// performance ... has significant impact on the overall performance of the
// MapReduce job, and this interferes in the evaluation" (Sect. 1). To make
// that interference measurable, this module models the HDFS behaviours that
// matter to a MapReduce job:
//
//   * a NameNode holding file -> block -> replica-location metadata,
//   * block placement (first replica on the writer's node, the rest on
//     distinct random nodes — the default HDFS policy without racks),
//   * the write pipeline (client -> DN1 -> DN2 -> DN3 chained transfers,
//     each replica hitting its local disk),
//   * replica-aware reads (local disk when a replica is present, else a
//     transfer from a randomly chosen holder).
//
// SimDfs executes those data paths on a SimCluster, so DFS traffic contends
// with the job's shuffle for the same NICs and disks. The metadata layer
// (DfsNamespace) is deterministic and independently testable.

#ifndef MRMB_DFS_DFS_H_
#define MRMB_DFS_DFS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cluster/sim_cluster.h"
#include "common/rng.h"
#include "common/status.h"

namespace mrmb {

struct DfsBlock {
  int64_t block_id = 0;
  int64_t bytes = 0;
  // Nodes holding a replica; replicas[0] is the primary (writer-local when
  // possible).
  std::vector<int> replicas;
};

struct DfsFileInfo {
  std::string name;
  int64_t bytes = 0;
  std::vector<DfsBlock> blocks;
};

// NameNode metadata: deterministic block placement and replica lookup.
class DfsNamespace {
 public:
  // `num_nodes` DataNodes; `seed` drives replica placement.
  DfsNamespace(int num_nodes, int64_t block_bytes, int replication,
               uint64_t seed);

  // Creates a file of `bytes`, placing blocks as if written from
  // `writer_node` (-1 = external client: all replicas random). Fails if the
  // file exists.
  Result<DfsFileInfo> CreateFile(const std::string& name, int64_t bytes,
                                 int writer_node);

  Result<DfsFileInfo> GetFile(const std::string& name) const;
  Status DeleteFile(const std::string& name);
  bool Exists(const std::string& name) const;

  // True if `node` holds a replica of `block`.
  static bool HasReplica(const DfsBlock& block, int node);
  // A replica holder for `block`, preferring `reader_node` (data-local),
  // else deterministic-random among holders.
  int PickReplica(const DfsBlock& block, int reader_node);

  // Bytes of block data stored on `node` across all files.
  int64_t BytesOnNode(int node) const;

  int num_nodes() const { return num_nodes_; }
  int64_t block_bytes() const { return block_bytes_; }
  int replication() const { return replication_; }

 private:
  std::vector<int> PlaceReplicas(int writer_node);

  int num_nodes_;
  int64_t block_bytes_;
  int replication_;
  Rng rng_;
  int64_t next_block_id_ = 1;
  std::map<std::string, DfsFileInfo> files_;
};

// Executes DFS data paths on a simulated cluster.
class SimDfs {
 public:
  using DoneFn = std::function<void(SimTime)>;

  // `cluster` must outlive the SimDfs.
  SimDfs(SimCluster* cluster, int64_t block_bytes, int replication,
         uint64_t seed);

  // Writes `bytes` from `writer_node` as `name`, running every block
  // through the replication pipeline (chained transfers + a disk write per
  // replica). `done` fires when the last block is fully replicated.
  // Blocks are written sequentially (one pipeline in flight per file),
  // like a single HDFS output stream.
  void WriteFile(const std::string& name, int64_t bytes, int writer_node,
                 DoneFn done);

  // Reads byte range [offset, offset+bytes) of `name` from `reader_node`:
  // local replicas stream from the local disk; remote blocks add a network
  // transfer from a replica holder (which still pays its local disk read).
  // Fails the process on unknown files (programming error in the caller).
  void ReadRange(const std::string& name, int64_t offset, int64_t bytes,
                 int reader_node, DoneFn done);

  DfsNamespace* names() { return &names_; }

  // Total bytes moved over the network on behalf of DFS (reads + pipeline).
  int64_t network_bytes() const { return network_bytes_; }
  int64_t disk_bytes() const { return disk_bytes_; }

 private:
  void WriteBlocksFrom(const DfsFileInfo& info, size_t block_index,
                       int writer_node, DoneFn done);
  void PipelineHop(const DfsBlock& block, size_t replica_index,
                   int upstream_node, DoneFn done);

  SimCluster* cluster_;
  DfsNamespace names_;
  int64_t network_bytes_ = 0;
  int64_t disk_bytes_ = 0;
};

}  // namespace mrmb

#endif  // MRMB_DFS_DFS_H_
