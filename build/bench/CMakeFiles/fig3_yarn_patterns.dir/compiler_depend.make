# Empty compiler generated dependencies file for fig3_yarn_patterns.
# This may be replaced when dependencies are built.
