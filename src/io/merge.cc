#include "io/merge.h"

#include <utility>

#include "common/logging.h"
#include "io/byte_buffer.h"

namespace mrmb {

SegmentReader::SegmentReader(std::string_view data) : data_(data) {
  Decode();
}

void SegmentReader::Next() {
  MRMB_CHECK(valid_);
  Decode();
}

void SegmentReader::Decode() {
  if (pos_ >= data_.size()) {
    valid_ = false;
    key_ = {};
    value_ = {};
    return;
  }
  const auto fail = [this](const char* what) {
    valid_ = false;
    key_ = {};
    value_ = {};
    status_ = Status::DataLoss(std::string(what) + " at segment offset " +
                               std::to_string(pos_));
  };
  int64_t key_len = 0, value_len = 0;
  size_t hdr = 0;
  if (!DecodeVarint64(data_.substr(pos_), &key_len, &hdr).ok()) {
    return fail("malformed key-length varint");
  }
  pos_ += hdr;
  if (!DecodeVarint64(data_.substr(pos_), &value_len, &hdr).ok()) {
    return fail("malformed value-length varint");
  }
  pos_ += hdr;
  if (key_len < 0 || value_len < 0 ||
      static_cast<size_t>(key_len) > data_.size() - pos_ ||
      static_cast<size_t>(value_len) >
          data_.size() - pos_ - static_cast<size_t>(key_len)) {
    return fail("truncated record frame");
  }
  key_ = data_.substr(pos_, static_cast<size_t>(key_len));
  pos_ += static_cast<size_t>(key_len);
  value_ = data_.substr(pos_, static_cast<size_t>(value_len));
  pos_ += static_cast<size_t>(value_len);
  valid_ = true;
}

MergeIterator::MergeIterator(
    std::vector<std::unique_ptr<RecordStream>> inputs,
    const RawComparator* comparator)
    : inputs_(std::move(inputs)), comparator_(comparator) {
  MRMB_CHECK(comparator_ != nullptr);
  heap_.reserve(inputs_.size());
  for (size_t i = 0; i < inputs_.size(); ++i) {
    PushIfValid(inputs_[i].get(), i);
  }
}

std::string_view MergeIterator::key() const {
  MRMB_CHECK(Valid());
  return heap_.front().stream->key();
}

std::string_view MergeIterator::value() const {
  MRMB_CHECK(Valid());
  return heap_.front().stream->value();
}

void MergeIterator::Next() {
  MRMB_CHECK(Valid());
  RecordStream* top = heap_.front().stream;
  top->Next();
  if (!top->Valid()) {
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (heap_.empty()) return;
  }
  SiftDown(0);
}

Status MergeIterator::status() const {
  for (const std::unique_ptr<RecordStream>& input : inputs_) {
    Status status = input->status();
    if (!status.ok()) return status;
  }
  return Status::OK();
}

bool MergeIterator::Less(const HeapEntry& a, const HeapEntry& b) const {
  const int cmp = comparator_->Compare(a.stream->key(), b.stream->key());
  if (cmp != 0) return cmp < 0;
  return a.input_index < b.input_index;
}

void MergeIterator::SiftDown(size_t i) {
  const size_t n = heap_.size();
  while (true) {
    const size_t left = 2 * i + 1;
    const size_t right = 2 * i + 2;
    size_t smallest = i;
    if (left < n && Less(heap_[left], heap_[smallest])) smallest = left;
    if (right < n && Less(heap_[right], heap_[smallest])) smallest = right;
    if (smallest == i) return;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

void MergeIterator::SiftUp(size_t i) {
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!Less(heap_[i], heap_[parent])) return;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void MergeIterator::PushIfValid(RecordStream* stream, size_t input_index) {
  if (!stream->Valid()) return;
  heap_.push_back(HeapEntry{stream, input_index});
  SiftUp(heap_.size() - 1);
}

GroupedIterator::GroupedIterator(RecordStream* stream,
                                 const RawComparator* comparator)
    : stream_(stream), comparator_(comparator) {
  MRMB_CHECK(stream_ != nullptr);
  MRMB_CHECK(comparator_ != nullptr);
}

bool GroupedIterator::NextGroup() {
  if (in_group_) {
    // Caller abandoned the group mid-way: skip its remaining values.
    while (stream_->Valid() &&
           comparator_->Compare(stream_->key(), group_key_) == 0) {
      stream_->Next();
    }
    in_group_ = false;
  }
  if (!stream_->Valid()) return false;
  group_key_.assign(stream_->key());
  in_group_ = true;
  first_value_pending_ = true;
  return true;
}

bool GroupedIterator::NextValue() {
  if (!in_group_) return false;
  if (first_value_pending_) {
    first_value_pending_ = false;
    return true;
  }
  stream_->Next();
  if (stream_->Valid() &&
      comparator_->Compare(stream_->key(), group_key_) == 0) {
    return true;
  }
  // Stream now rests on the next group's first record (or at end).
  in_group_ = false;
  return false;
}

}  // namespace mrmb
