#include "mapred/fault_injector.h"

#include <gtest/gtest.h>

#include "io/byte_buffer.h"
#include "io/checksum.h"
#include "io/writable.h"

namespace mrmb {
namespace {

std::string WireBytes(const std::string& payload) {
  BufferWriter writer;
  BytesWritable(payload).Serialize(&writer);
  return writer.data();
}

TEST(LocalFaultPlanTest, EmptySpecYieldsEmptyPlan) {
  auto plan = LocalFaultPlan::Parse("");
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->empty());
  EXPECT_EQ(plan->ToString(), "");
}

TEST(LocalFaultPlanTest, ParsesEveryKind) {
  auto plan = LocalFaultPlan::Parse(
      "fail_map:3@a=0; fail_reduce:1@a=2; corrupt_map:2@a=0,p=1; "
      "delay_map:0@a=0,ms=500; delay_reduce:4@a=1,ms=50; "
      "map_fail_prob:0.05; reduce_fail_prob:0.1");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->events.size(), 5u);
  EXPECT_EQ(plan->events[0].kind, LocalFaultKind::kFailMap);
  EXPECT_EQ(plan->events[0].task, 3);
  EXPECT_EQ(plan->events[0].attempt, 0);
  EXPECT_EQ(plan->events[1].kind, LocalFaultKind::kFailReduce);
  EXPECT_EQ(plan->events[1].attempt, 2);
  EXPECT_EQ(plan->events[2].kind, LocalFaultKind::kCorruptMap);
  EXPECT_EQ(plan->events[2].partition, 1);
  EXPECT_EQ(plan->events[3].kind, LocalFaultKind::kDelayMap);
  EXPECT_EQ(plan->events[3].delay_ms, 500);
  EXPECT_EQ(plan->events[4].kind, LocalFaultKind::kDelayReduce);
  EXPECT_EQ(plan->events[4].delay_ms, 50);
  EXPECT_DOUBLE_EQ(plan->map_failure_prob, 0.05);
  EXPECT_DOUBLE_EQ(plan->reduce_failure_prob, 0.1);
}

TEST(LocalFaultPlanTest, ToStringParseRoundTrips) {
  auto plan = LocalFaultPlan::Parse(
      "fail_map:3@a=0;corrupt_map:2@a=0,p=1;delay_map:0@a=0,ms=500;"
      "map_fail_prob:0.05");
  ASSERT_TRUE(plan.ok());
  auto reparsed = LocalFaultPlan::Parse(plan->ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->events, plan->events);
  EXPECT_DOUBLE_EQ(reparsed->map_failure_prob, plan->map_failure_prob);
  EXPECT_DOUBLE_EQ(reparsed->reduce_failure_prob, plan->reduce_failure_prob);
}

TEST(LocalFaultPlanTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(LocalFaultPlan::Parse("nonsense").ok());
  EXPECT_FALSE(LocalFaultPlan::Parse("explode_map:1@a=0").ok());
  EXPECT_FALSE(LocalFaultPlan::Parse("fail_map:1").ok());
  EXPECT_FALSE(LocalFaultPlan::Parse("fail_map:x@a=0").ok());
  EXPECT_FALSE(LocalFaultPlan::Parse("fail_map:1@a=0,p=2").ok());
  EXPECT_FALSE(LocalFaultPlan::Parse("corrupt_map:1@a=0").ok());
  EXPECT_FALSE(LocalFaultPlan::Parse("corrupt_map:1@a=0,ms=5").ok());
  EXPECT_FALSE(LocalFaultPlan::Parse("delay_map:1@a=0").ok());
  EXPECT_FALSE(LocalFaultPlan::Parse("delay_map:1@a=0,ms=0").ok());
  EXPECT_FALSE(LocalFaultPlan::Parse("map_fail_prob:maybe").ok());
  EXPECT_FALSE(LocalFaultPlan::Parse("map_fail_prob:1.5").ok());
}

TEST(LocalFaultInjectorTest, ScheduledFailuresHitExactAttempt) {
  auto plan = LocalFaultPlan::Parse("fail_map:3@a=0;fail_reduce:1@a=2");
  ASSERT_TRUE(plan.ok());
  LocalFaultInjector injector(*plan, /*seed=*/7);
  EXPECT_TRUE(injector.ShouldFailMap(3, 0));
  EXPECT_FALSE(injector.ShouldFailMap(3, 1));
  EXPECT_FALSE(injector.ShouldFailMap(2, 0));
  EXPECT_TRUE(injector.ShouldFailReduce(1, 2));
  EXPECT_FALSE(injector.ShouldFailReduce(1, 0));
}

TEST(LocalFaultInjectorTest, DelaysSumOverMatchingEvents) {
  auto plan =
      LocalFaultPlan::Parse("delay_map:0@a=0,ms=100;delay_map:0@a=0,ms=50");
  ASSERT_TRUE(plan.ok());
  LocalFaultInjector injector(*plan, 7);
  EXPECT_EQ(injector.MapDelayMs(0, 0), 150);
  EXPECT_EQ(injector.MapDelayMs(0, 1), 0);
  EXPECT_EQ(injector.ReduceDelayMs(0, 0), 0);
}

TEST(LocalFaultInjectorTest, HazardIsDeterministicPerAttempt) {
  LocalFaultPlan plan;
  plan.map_failure_prob = 0.5;
  LocalFaultInjector a(plan, 42);
  LocalFaultInjector b(plan, 42);
  int failures = 0;
  for (int task = 0; task < 50; ++task) {
    for (int attempt = 0; attempt < 4; ++attempt) {
      EXPECT_EQ(a.ShouldFailMap(task, attempt),
                b.ShouldFailMap(task, attempt));
      if (a.ShouldFailMap(task, attempt)) ++failures;
    }
  }
  // Roughly half of 200 draws; loose bounds, exact value is pinned by seed.
  EXPECT_GT(failures, 60);
  EXPECT_LT(failures, 140);
}

SpillSegment TwoPartitionSegment() {
  KvBuffer buffer(DataType::kBytesWritable, 2, 1 << 20);
  EXPECT_TRUE(buffer.Append(0, WireBytes("key0"), WireBytes("value0")));
  EXPECT_TRUE(buffer.Append(1, WireBytes("key1"), WireBytes("value1")));
  buffer.Sort();
  return buffer.ToSpill();
}

TEST(LocalFaultInjectorTest, CorruptsExactlyTheNamedPartition) {
  auto plan = LocalFaultPlan::Parse("corrupt_map:2@a=0,p=1");
  ASSERT_TRUE(plan.ok());
  LocalFaultInjector injector(*plan, 42);

  SpillSegment segment = TwoPartitionSegment();
  ASSERT_TRUE(injector.MaybeCorruptMapOutput(2, 0, &segment));
  // The seal predates the flip, so verification pinpoints partition 1.
  EXPECT_TRUE(VerifySegmentPartition(segment, 0).ok());
  EXPECT_EQ(VerifySegmentPartition(segment, 1).code(), StatusCode::kDataLoss);

  // Wrong task or attempt: untouched.
  SpillSegment other = TwoPartitionSegment();
  EXPECT_FALSE(injector.MaybeCorruptMapOutput(2, 1, &other));
  EXPECT_FALSE(injector.MaybeCorruptMapOutput(1, 0, &other));
  EXPECT_TRUE(VerifySegment(other).ok());
}

TEST(LocalFaultInjectorTest, CorruptionIsDeterministic) {
  auto plan = LocalFaultPlan::Parse("corrupt_map:0@a=0,p=0");
  ASSERT_TRUE(plan.ok());
  LocalFaultInjector injector(*plan, 99);
  SpillSegment a = TwoPartitionSegment();
  SpillSegment b = TwoPartitionSegment();
  ASSERT_TRUE(injector.MaybeCorruptMapOutput(0, 0, &a));
  ASSERT_TRUE(injector.MaybeCorruptMapOutput(0, 0, &b));
  EXPECT_EQ(a.data, b.data);  // same bit flipped both times
}

TEST(LocalFaultInjectorTest, EmptyPartitionCannotBeCorrupted) {
  auto plan = LocalFaultPlan::Parse("corrupt_map:0@a=0,p=1");
  ASSERT_TRUE(plan.ok());
  LocalFaultInjector injector(*plan, 1);
  KvBuffer buffer(DataType::kBytesWritable, 2, 1 << 20);
  EXPECT_TRUE(buffer.Append(0, WireBytes("k"), WireBytes("v")));
  buffer.Sort();
  SpillSegment segment = buffer.ToSpill();  // partition 1 is empty
  EXPECT_FALSE(injector.MaybeCorruptMapOutput(0, 0, &segment));
  EXPECT_TRUE(VerifySegment(segment).ok());
}

TEST(LocalFaultInjectorTest, OutOfRangePartitionIsIgnored) {
  auto plan = LocalFaultPlan::Parse("corrupt_map:0@a=0,p=9");
  ASSERT_TRUE(plan.ok());
  LocalFaultInjector injector(*plan, 1);
  SpillSegment segment = TwoPartitionSegment();
  EXPECT_FALSE(injector.MaybeCorruptMapOutput(0, 0, &segment));
  EXPECT_TRUE(VerifySegment(segment).ok());
}

// ---- I/O fault family (spill storage engine hazards) ---------------------

TEST(LocalFaultPlanTest, ParsesEveryIoFaultKind) {
  auto plan = LocalFaultPlan::Parse(
      "corrupt_block:2@a=0,b=1; corrupt_block:2@a=1,b=0,n=3; "
      "torn_write:1@a=0; short_read:0.1; eio_prob:0.05; "
      "enospc_after_bytes:1048576");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->events.size(), 3u);
  EXPECT_EQ(plan->events[0].kind, LocalFaultKind::kCorruptBlock);
  EXPECT_EQ(plan->events[0].task, 2);
  EXPECT_EQ(plan->events[0].attempt, 0);
  EXPECT_EQ(plan->events[0].block, 1);
  EXPECT_EQ(plan->events[0].bits, 1);
  EXPECT_EQ(plan->events[1].bits, 3);
  EXPECT_EQ(plan->events[2].kind, LocalFaultKind::kTornWrite);
  EXPECT_EQ(plan->events[2].task, 1);
  EXPECT_DOUBLE_EQ(plan->short_read_prob, 0.1);
  EXPECT_DOUBLE_EQ(plan->eio_prob, 0.05);
  EXPECT_EQ(plan->enospc_after_bytes, 1048576);
  EXPECT_FALSE(plan->empty());
}

TEST(LocalFaultPlanTest, IoFaultToStringParseRoundTrips) {
  auto plan = LocalFaultPlan::Parse(
      "corrupt_block:2@a=0,b=1,n=3;torn_write:1@a=0;short_read:0.1;"
      "eio_prob:0.05;enospc_after_bytes:4096");
  ASSERT_TRUE(plan.ok());
  auto reparsed = LocalFaultPlan::Parse(plan->ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->events, plan->events);
  EXPECT_DOUBLE_EQ(reparsed->short_read_prob, plan->short_read_prob);
  EXPECT_DOUBLE_EQ(reparsed->eio_prob, plan->eio_prob);
  EXPECT_EQ(reparsed->enospc_after_bytes, plan->enospc_after_bytes);
}

TEST(LocalFaultPlanTest, RejectsMalformedIoFaultSpecs) {
  EXPECT_FALSE(LocalFaultPlan::Parse("corrupt_block:1@a=0").ok());  // no b=
  EXPECT_FALSE(LocalFaultPlan::Parse("corrupt_block:1@a=0,b=-1").ok());
  EXPECT_FALSE(LocalFaultPlan::Parse("corrupt_block:1@a=0,b=0,n=0").ok());
  EXPECT_FALSE(LocalFaultPlan::Parse("torn_write:1@a=0,ms=5").ok());
  EXPECT_FALSE(LocalFaultPlan::Parse("short_read:1.5").ok());
  EXPECT_FALSE(LocalFaultPlan::Parse("short_read:x").ok());
  EXPECT_FALSE(LocalFaultPlan::Parse("eio_prob:-0.1").ok());
  EXPECT_FALSE(LocalFaultPlan::Parse("enospc_after_bytes:-2").ok());
}

TEST(LocalSpillIoHooksTest, EnospcFiresOnceThresholdCrossed) {
  auto plan = LocalFaultPlan::Parse("enospc_after_bytes:1000");
  ASSERT_TRUE(plan.ok());
  LocalSpillIoHooks hooks(*plan, 7);
  EXPECT_TRUE(hooks.BeforeExtentWrite(0, 1000).ok());
  const Status full = hooks.BeforeExtentWrite(900, 200);
  ASSERT_FALSE(full.ok());
  EXPECT_EQ(full.code(), StatusCode::kResourceExhausted);
}

TEST(LocalSpillIoHooksTest, BlockCorruptionTargetsExactBlockAndAttempt) {
  auto plan = LocalFaultPlan::Parse("corrupt_block:2@a=0,b=1");
  ASSERT_TRUE(plan.ok());
  LocalSpillIoHooks hooks(*plan, 7);
  const std::string pristine(100, 'x');
  std::string frame = pristine;
  hooks.MutateBlockFrame(2, 0, 0, &frame);  // wrong block
  EXPECT_EQ(frame, pristine);
  hooks.MutateBlockFrame(2, 1, 1, &frame);  // wrong attempt
  EXPECT_EQ(frame, pristine);
  hooks.MutateBlockFrame(2, 0, 1, &frame);  // the target
  EXPECT_NE(frame, pristine);
  // Deterministic: the same flip again restores the original bytes.
  hooks.MutateBlockFrame(2, 0, 1, &frame);
  EXPECT_EQ(frame, pristine);
}

TEST(LocalSpillIoHooksTest, TornWriteDropsBoundedTail) {
  auto plan = LocalFaultPlan::Parse("torn_write:1@a=0");
  ASSERT_TRUE(plan.ok());
  LocalSpillIoHooks hooks(*plan, 7);
  EXPECT_EQ(hooks.TornWriteBytes(0, 0, 500), 0);  // wrong task
  const int64_t torn = hooks.TornWriteBytes(1, 0, 500);
  EXPECT_GE(torn, 1);
  EXPECT_LE(torn, 500);
  EXPECT_EQ(hooks.TornWriteBytes(1, 0, 500), torn);  // deterministic
}

TEST(LocalSpillIoHooksTest, ReadHazardsAreDeterministicPerBlockAndRetry) {
  auto plan = LocalFaultPlan::Parse("short_read:0.5;eio_prob:0.5");
  ASSERT_TRUE(plan.ok());
  LocalSpillIoHooks hooks(*plan, 7);
  int shorts = 0;
  int eios = 0;
  for (int64_t block = 0; block < 64; ++block) {
    const bool short_read = hooks.InjectShortRead(0, 0, block);
    EXPECT_EQ(hooks.InjectShortRead(0, 0, block), short_read);
    shorts += short_read ? 1 : 0;
    const bool eio = hooks.InjectReadError(0, 0, block, 0);
    EXPECT_EQ(hooks.InjectReadError(0, 0, block, 0), eio);
    eios += eio ? 1 : 0;
    // Retries draw fresh decisions, so not every retry repeats the fault.
  }
  EXPECT_GT(shorts, 0);
  EXPECT_LT(shorts, 64);
  EXPECT_GT(eios, 0);
  EXPECT_LT(eios, 64);
}

// ---- Crash fault family (journal-anchored process crashes) ---------------

TEST(LocalFaultPlanTest, ParsesEveryTransportFaultKind) {
  auto plan = LocalFaultPlan::Parse(
      "drop_conn:2@a=0; trunc_frame:1@a=3; slow_peer:0.25");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->events.size(), 2u);
  EXPECT_EQ(plan->events[0].kind, LocalFaultKind::kDropConn);
  EXPECT_EQ(plan->events[0].task, 2);
  EXPECT_EQ(plan->events[0].attempt, 0);
  EXPECT_EQ(plan->events[1].kind, LocalFaultKind::kTruncFrame);
  EXPECT_EQ(plan->events[1].task, 1);
  EXPECT_EQ(plan->events[1].attempt, 3);
  EXPECT_DOUBLE_EQ(plan->slow_peer_prob, 0.25);
  EXPECT_FALSE(plan->empty());
}

TEST(LocalFaultPlanTest, TransportFaultToStringParseRoundTrips) {
  auto plan = LocalFaultPlan::Parse(
      "drop_conn:2@a=0;trunc_frame:1@a=3;slow_peer:0.25");
  ASSERT_TRUE(plan.ok());
  auto reparsed = LocalFaultPlan::Parse(plan->ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->events, plan->events);
  EXPECT_DOUBLE_EQ(reparsed->slow_peer_prob, plan->slow_peer_prob);
}

TEST(LocalFaultPlanTest, RejectsMalformedTransportFaultSpecs) {
  EXPECT_FALSE(LocalFaultPlan::Parse("drop_conn:1").ok());  // no @a=
  EXPECT_FALSE(LocalFaultPlan::Parse("drop_conn:1@a=0,ms=5").ok());
  EXPECT_FALSE(LocalFaultPlan::Parse("trunc_frame:1@a=0,p=1").ok());
  EXPECT_FALSE(LocalFaultPlan::Parse("slow_peer:1.0").ok());  // must be < 1
  EXPECT_FALSE(LocalFaultPlan::Parse("slow_peer:-0.1").ok());
  EXPECT_FALSE(LocalFaultPlan::Parse("slow_peer:x").ok());
}

TEST(LocalFaultInjectorTest, TransportEventsFireAtExactFetchSeq) {
  auto plan =
      LocalFaultPlan::Parse("drop_conn:2@a=1;trunc_frame:3@a=0");
  ASSERT_TRUE(plan.ok());
  const LocalFaultInjector injector(*plan, /*seed=*/1);
  EXPECT_TRUE(injector.DropConnAt(2, 1));
  EXPECT_FALSE(injector.DropConnAt(2, 0));
  EXPECT_FALSE(injector.DropConnAt(1, 1));
  EXPECT_FALSE(injector.DropConnAt(3, 0));  // trunc_frame, not drop_conn
  EXPECT_TRUE(injector.TruncFrameAt(3, 0));
  EXPECT_FALSE(injector.TruncFrameAt(3, 1));
  EXPECT_FALSE(injector.TruncFrameAt(2, 1));
}

TEST(LocalFaultInjectorTest, SlowPeerIsDeterministicPerFetch) {
  auto plan = LocalFaultPlan::Parse("slow_peer:0.5");
  ASSERT_TRUE(plan.ok());
  const LocalFaultInjector injector(*plan, /*seed=*/7);
  int delayed = 0;
  for (int map = 0; map < 8; ++map) {
    for (int64_t seq = 0; seq < 8; ++seq) {
      const int64_t first = injector.SlowPeerDelayMs(map, seq);
      EXPECT_EQ(first, injector.SlowPeerDelayMs(map, seq));
      EXPECT_GE(first, 0);
      if (first > 0) ++delayed;
    }
  }
  // With p=0.5 over 64 draws, both outcomes must occur.
  EXPECT_GT(delayed, 0);
  EXPECT_LT(delayed, 64);

  // A different seed redraws the hazard stream.
  const LocalFaultInjector reseeded(*plan, /*seed=*/8);
  bool diverged = false;
  for (int map = 0; map < 8 && !diverged; ++map) {
    for (int64_t seq = 0; seq < 8 && !diverged; ++seq) {
      diverged = injector.SlowPeerDelayMs(map, seq) !=
                 reseeded.SlowPeerDelayMs(map, seq);
    }
  }
  EXPECT_TRUE(diverged);

  // No plan, no delay.
  const LocalFaultInjector inert(LocalFaultPlan(), /*seed=*/7);
  EXPECT_EQ(inert.SlowPeerDelayMs(0, 0), 0);
}

TEST(LocalFaultPlanTest, ParsesCrashPoints) {
  auto plan = LocalFaultPlan::Parse(
      "crash_at:job_start@0; crash_at:map_commit@2; "
      "crash_at:reduce_commit@0; crash_at:job_commit@0");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->crash_points.size(), 4u);
  EXPECT_EQ(plan->crash_points[0].event, CrashEvent::kJobStart);
  EXPECT_EQ(plan->crash_points[0].occurrence, 0);
  EXPECT_EQ(plan->crash_points[1].event, CrashEvent::kMapCommit);
  EXPECT_EQ(plan->crash_points[1].occurrence, 2);
  EXPECT_EQ(plan->crash_points[2].event, CrashEvent::kReduceCommit);
  EXPECT_EQ(plan->crash_points[3].event, CrashEvent::kJobCommit);
  EXPECT_FALSE(plan->empty());
}

TEST(LocalFaultPlanTest, CrashPointToStringParseRoundTrips) {
  auto plan = LocalFaultPlan::Parse(
      "crash_at:map_commit@3;crash_at:job_commit@0;enospc_after_bytes:4096");
  ASSERT_TRUE(plan.ok());
  auto reparsed = LocalFaultPlan::Parse(plan->ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->crash_points, plan->crash_points);
  EXPECT_EQ(reparsed->enospc_after_bytes, plan->enospc_after_bytes);
}

TEST(LocalFaultPlanTest, CrashesAtMatchesExactOccurrence) {
  auto plan = LocalFaultPlan::Parse("crash_at:map_commit@2");
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->CrashesAt(CrashEvent::kMapCommit, 0));
  EXPECT_FALSE(plan->CrashesAt(CrashEvent::kMapCommit, 1));
  EXPECT_TRUE(plan->CrashesAt(CrashEvent::kMapCommit, 2));
  EXPECT_FALSE(plan->CrashesAt(CrashEvent::kMapCommit, 3));
  EXPECT_FALSE(plan->CrashesAt(CrashEvent::kReduceCommit, 2));
}

TEST(LocalFaultPlanTest, RejectsMalformedCrashPoints) {
  EXPECT_FALSE(LocalFaultPlan::Parse("crash_at:map_commit").ok());
  EXPECT_FALSE(LocalFaultPlan::Parse("crash_at:map_commit@-1").ok());
  EXPECT_FALSE(LocalFaultPlan::Parse("crash_at:map_commit@x").ok());
  // An unknown event errors and the message lists what IS accepted.
  const auto bad = LocalFaultPlan::Parse("crash_at:shuffle_done@0");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().ToString().find("job_start"), std::string::npos)
      << bad.status().ToString();
  EXPECT_NE(bad.status().ToString().find("job_commit"), std::string::npos);
}

TEST(LocalFaultPlanTest, UnknownKindErrorListsAcceptedKinds) {
  const auto bad = LocalFaultPlan::Parse("explode_map:1@a=0");
  ASSERT_FALSE(bad.ok());
  const std::string message = bad.status().ToString();
  EXPECT_NE(message.find("explode_map"), std::string::npos) << message;
  EXPECT_NE(message.find("accepted"), std::string::npos) << message;
  EXPECT_NE(message.find("crash_at"), std::string::npos) << message;
  EXPECT_NE(message.find("fail_map"), std::string::npos) << message;
}

TEST(LocalFaultPlanTest, CrashEventNamesRoundTrip) {
  for (const CrashEvent event :
       {CrashEvent::kJobStart, CrashEvent::kMapCommit,
        CrashEvent::kReduceCommit, CrashEvent::kJobCommit}) {
    auto parsed = CrashEventByName(CrashEventName(event));
    ASSERT_TRUE(parsed.ok()) << CrashEventName(event);
    EXPECT_EQ(*parsed, event);
  }
  EXPECT_FALSE(CrashEventByName("warp_core_breach").ok());
}

}  // namespace
}  // namespace mrmb
