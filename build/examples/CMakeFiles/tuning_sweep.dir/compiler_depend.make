# Empty compiler generated dependencies file for tuning_sweep.
# This may be replaced when dependencies are built.
