# Empty compiler generated dependencies file for ablation_slowstart.
# This may be replaced when dependencies are built.
