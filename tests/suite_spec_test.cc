#include "mrmb/suite_spec.h"

#include <gtest/gtest.h>

#include <sstream>

namespace mrmb {
namespace {

TEST(SuiteSpecParseTest, ParsesSectionsAndLists) {
  auto spec = ParseSuiteSpec(R"(
# a comment
[first]
pattern = avg
network = 1gige, ipoib-qdr   # inline comment
shuffle = 4GB, 8GB

[second]
pattern = skew
maps = 32
)");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  ASSERT_EQ(spec->sections.size(), 2u);
  EXPECT_EQ(spec->sections[0].name, "first");
  EXPECT_EQ(spec->sections[0].entries.at("network").size(), 2u);
  EXPECT_EQ(spec->sections[0].entries.at("network")[1], "ipoib-qdr");
  EXPECT_EQ(spec->sections[1].entries.at("maps")[0], "32");
}

TEST(SuiteSpecParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseSuiteSpec("").ok());
  EXPECT_FALSE(ParseSuiteSpec("pattern = avg\n").ok());  // outside section
  EXPECT_FALSE(ParseSuiteSpec("[a]\npattern avg\n").ok());  // no '='
  EXPECT_FALSE(ParseSuiteSpec("[a\npattern = avg\n").ok());  // bad header
  EXPECT_FALSE(ParseSuiteSpec("[a]\nbogus_key = 1\n").ok());
  EXPECT_FALSE(ParseSuiteSpec("[a]\npattern = avg\npattern = rand\n").ok());
  EXPECT_FALSE(ParseSuiteSpec("[a]\n[a]\n").ok());  // duplicate section
  EXPECT_FALSE(ParseSuiteSpec("[a]\nshuffle = ,\n").ok());  // empty values
}

TEST(SuiteSpecResolveTest, BuildsSweepMatrix) {
  auto spec = ParseSuiteSpec(R"(
[sweep]
pattern = rand
network = 1gige, 10gige
shuffle = 1GB, 2GB, 4GB
maps = 8
reduces = 4
slaves = 2
kv = 2KB
type = text
compress = true
seed = 7
)");
  ASSERT_TRUE(spec.ok());
  auto resolved = ResolveSection(spec->sections[0]);
  ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();
  ASSERT_EQ(resolved->options.size(), 2u);      // networks
  ASSERT_EQ(resolved->options[0].size(), 3u);   // shuffle sizes
  const BenchmarkOptions& options = resolved->options[1][2];
  EXPECT_EQ(options.pattern, DistributionPattern::kRandom);
  EXPECT_EQ(options.network.name, TenGigE().name);
  EXPECT_EQ(options.shuffle_bytes, 4LL << 30);
  EXPECT_EQ(options.num_maps, 8);
  EXPECT_EQ(options.num_reduces, 4);
  EXPECT_EQ(options.num_slaves, 2);
  EXPECT_EQ(options.key_size, 1024);
  EXPECT_EQ(options.value_size, 1024);
  EXPECT_EQ(options.data_type, DataType::kText);
  EXPECT_TRUE(options.compress_map_output);
  EXPECT_EQ(options.seed, 7u);
}

TEST(SuiteSpecResolveTest, DefaultsApply) {
  auto spec = ParseSuiteSpec("[defaults]\npattern = avg\n");
  ASSERT_TRUE(spec.ok());
  auto resolved = ResolveSection(spec->sections[0]);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->options.size(), 1u);
  EXPECT_EQ(resolved->options[0][0].num_maps, 16);
  EXPECT_EQ(resolved->options[0][0].network.name, IpoibQdr().name);
}

TEST(SuiteSpecResolveTest, RejectsBadValues) {
  for (const char* bad :
       {"[x]\npattern = pareto\n", "[x]\nnetwork = myrinet\n",
        "[x]\nmaps = -4\n", "[x]\nmaps = eight\n",
        "[x]\nshuffle = muchdata\n", "[x]\ncluster = c\n",
        "[x]\nmaps = 4, 8\n"}) {
    auto spec = ParseSuiteSpec(bad);
    ASSERT_TRUE(spec.ok()) << bad;
    EXPECT_FALSE(ResolveSection(spec->sections[0]).ok()) << bad;
  }
}

TEST(SuiteSpecResolveTest, FaultKeysResolve) {
  auto spec = ParseSuiteSpec(R"(
[faulty]
pattern = avg
map-fail-prob = 0.05
reduce-fail-prob = 0.02
straggler-prob = 0.1
straggler-slowdown = 4.0
speculative = true
max-attempts = 6
max-fetch-failures = 3
blacklist-threshold = 2
fault-plan = kill_node:1@t=40s;degrade_link:2@t=10s,x0.25
crash-prob = 0.001
fetch-fail-prob = 0.01
)");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  auto resolved = ResolveSection(spec->sections[0]);
  ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();
  const BenchmarkOptions& options = resolved->options[0][0];
  EXPECT_DOUBLE_EQ(options.map_failure_prob, 0.05);
  EXPECT_DOUBLE_EQ(options.reduce_failure_prob, 0.02);
  EXPECT_DOUBLE_EQ(options.straggler_prob, 0.1);
  EXPECT_DOUBLE_EQ(options.straggler_slowdown, 4.0);
  EXPECT_TRUE(options.speculative_execution);
  EXPECT_EQ(options.max_task_attempts, 6);
  EXPECT_EQ(options.max_fetch_failures, 3);
  EXPECT_EQ(options.node_blacklist_threshold, 2);
  ASSERT_EQ(options.fault_plan.events.size(), 2u);
  EXPECT_EQ(options.fault_plan.events[0].kind, FaultEventKind::kKillNode);
  // The comma inside degrade_link survives the list-splitting parser.
  EXPECT_EQ(options.fault_plan.events[1].kind, FaultEventKind::kDegradeLink);
  EXPECT_DOUBLE_EQ(options.fault_plan.events[1].factor, 0.25);
  EXPECT_DOUBLE_EQ(options.fault_plan.node_crash_prob, 0.001);
  EXPECT_DOUBLE_EQ(options.fault_plan.fetch_failure_prob, 0.01);
}

TEST(SuiteSpecResolveTest, LocalRunnerKeysResolve) {
  auto spec = ParseSuiteSpec(R"(
[functional]
pattern = avg
local-threads = 8
task-timeout-ms = 2000
checksum = false
reduce-slowstart = 0.25
merge-factor = 4
fetch-latency-ms = 3
fetch-bandwidth-mbps = 64.5
map-output-codec = lz4
local-fault-plan = fail_map:3@a=0;corrupt_map:2@a=0,p=1
)");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  auto resolved = ResolveSection(spec->sections[0]);
  ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();
  const BenchmarkOptions& options = resolved->options[0][0];
  EXPECT_EQ(options.local_threads, 8);
  EXPECT_EQ(options.task_timeout_ms, 2000);
  EXPECT_FALSE(options.checksum_map_output);
  EXPECT_DOUBLE_EQ(options.reduce_slowstart, 0.25);
  EXPECT_EQ(options.merge_factor, 4);
  EXPECT_EQ(options.fetch_latency_ms, 3);
  EXPECT_DOUBLE_EQ(options.fetch_bandwidth_mbps, 64.5);
  EXPECT_EQ(options.map_output_codec, MapOutputCodec::kLz4);
  ASSERT_EQ(options.local_fault_plan.events.size(), 2u);
  EXPECT_EQ(options.local_fault_plan.events[0].kind,
            LocalFaultKind::kFailMap);
  // The comma inside corrupt_map's p=1 survives the list-splitting parser.
  EXPECT_EQ(options.local_fault_plan.events[1].kind,
            LocalFaultKind::kCorruptMap);
  EXPECT_EQ(options.local_fault_plan.events[1].partition, 1);
}

TEST(SuiteSpecResolveTest, SpillEngineKeysResolve) {
  auto spec = ParseSuiteSpec(R"(
[spill]
pattern = avg
spill-dir = /tmp/mrmb-spill
spill-budget-bytes = 32m
spill-cache-bytes = 4m
spill-block-bytes = 64k
spill-scrub = true
spill-mmap = yes
local-fault-plan = corrupt_block:2@a=0,b=1,n=3;short_read:0.1
)");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  auto resolved = ResolveSection(spec->sections[0]);
  ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();
  const BenchmarkOptions& options = resolved->options[0][0];
  EXPECT_EQ(options.spill_dir, "/tmp/mrmb-spill");
  EXPECT_EQ(options.spill_budget_bytes, 32ll << 20);
  EXPECT_EQ(options.spill_cache_bytes, 4ll << 20);
  EXPECT_EQ(options.spill_block_bytes, 64ll << 10);
  EXPECT_TRUE(options.spill_scrub);
  EXPECT_TRUE(options.spill_mmap);
  ASSERT_EQ(options.local_fault_plan.events.size(), 1u);
  EXPECT_EQ(options.local_fault_plan.events[0].kind,
            LocalFaultKind::kCorruptBlock);
  EXPECT_EQ(options.local_fault_plan.events[0].bits, 3);
  EXPECT_DOUBLE_EQ(options.local_fault_plan.short_read_prob, 0.1);
}

TEST(SuiteSpecResolveTest, SpillBudgetDefaultsOffAndAcceptsSentinel) {
  auto spec = ParseSuiteSpec("[x]\npattern = avg\nspill-budget-bytes = -1\n");
  ASSERT_TRUE(spec.ok());
  auto resolved = ResolveSection(spec->sections[0]);
  ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();
  EXPECT_EQ(resolved->options[0][0].spill_budget_bytes, -1);

  auto plain = ParseSuiteSpec("[x]\npattern = avg\n");
  ASSERT_TRUE(plain.ok());
  auto defaults = ResolveSection(plain->sections[0]);
  ASSERT_TRUE(defaults.ok());
  EXPECT_EQ(defaults->options[0][0].spill_budget_bytes, -1);
  EXPECT_TRUE(defaults->options[0][0].spill_dir.empty());
}

TEST(SuiteSpecResolveTest, RejectsBadSpillValues) {
  for (const char* bad :
       {"[x]\nspill-budget-bytes = lots\n", "[x]\nspill-cache-bytes = -3\n",
        "[x]\nlocal-fault-plan = corrupt_block:1@a=0\n",
        "[x]\nlocal-fault-plan = short_read:1.5\n"}) {
    auto spec = ParseSuiteSpec(bad);
    ASSERT_TRUE(spec.ok()) << bad;
    EXPECT_FALSE(ResolveSection(spec->sections[0]).ok()) << bad;
  }
}

TEST(SuiteSpecResolveTest, RejectsBadFaultValues) {
  for (const char* bad :
       {"[x]\nfault-plan = explode:1@t=2s\n", "[x]\ncrash-prob = maybe\n",
        "[x]\nmax-attempts = 0\n", "[x]\nblacklist-threshold = -2\n",
        "[x]\nlocal-threads = 0\n", "[x]\ntask-timeout-ms = -5\n",
        "[x]\nreduce-slowstart = 1.5\n", "[x]\nreduce-slowstart = -0.1\n",
        "[x]\nmerge-factor = 1\n", "[x]\nfetch-latency-ms = -1\n",
        "[x]\nfetch-bandwidth-mbps = -1\n",
        "[x]\nmap-output-codec = snappy\n",
        "[x]\nlocal-fault-plan = explode_map:1@a=0\n"}) {
    auto spec = ParseSuiteSpec(bad);
    ASSERT_TRUE(spec.ok()) << bad;
    EXPECT_FALSE(ResolveSection(spec->sections[0]).ok()) << bad;
  }
}

TEST(SuiteSpecParseTest, UnknownKeyErrorListsAcceptedKeys) {
  auto spec = ParseSuiteSpec("[a]\nbogus_key = 1\n");
  ASSERT_FALSE(spec.ok());
  const std::string message = spec.status().ToString();
  EXPECT_NE(message.find("unknown key 'bogus_key'"), std::string::npos)
      << message;
  // The error doubles as the reference card: it must enumerate what IS
  // accepted, including the crash-safe-job keys.
  EXPECT_NE(message.find("accepted keys:"), std::string::npos) << message;
  EXPECT_NE(message.find("pattern"), std::string::npos) << message;
  EXPECT_NE(message.find("spill-dir"), std::string::npos) << message;
  EXPECT_NE(message.find("journal"), std::string::npos) << message;
  EXPECT_NE(message.find("resume"), std::string::npos) << message;
}

TEST(SuiteSpecResolveTest, JournalKeysResolve) {
  auto spec = ParseSuiteSpec(R"(
[crashsafe]
pattern = avg
spill-dir = /tmp/mrmb-job
journal = true
resume = yes
)");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  auto resolved = ResolveSection(spec->sections[0]);
  ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();
  const BenchmarkOptions& options = resolved->options[0][0];
  EXPECT_TRUE(options.job_journal);
  EXPECT_TRUE(options.resume);

  auto plain = ParseSuiteSpec("[x]\npattern = avg\n");
  ASSERT_TRUE(plain.ok());
  auto defaults = ResolveSection(plain->sections[0]);
  ASSERT_TRUE(defaults.ok());
  EXPECT_FALSE(defaults->options[0][0].job_journal);
  EXPECT_FALSE(defaults->options[0][0].resume);
}

TEST(SuiteSpecRunTest, RunsTinySuiteEndToEnd) {
  auto spec = ParseSuiteSpec(R"(
[tiny]
pattern = avg
network = 1gige, ipoib-qdr
shuffle = 256MB
maps = 8
reduces = 4
slaves = 2
)");
  ASSERT_TRUE(spec.ok());
  std::ostringstream out;
  const Status status = RunSuite(*spec, /*csv=*/true, &out);
  ASSERT_TRUE(status.ok()) << status.ToString();
  const std::string text = out.str();
  EXPECT_NE(text.find("tiny"), std::string::npos);
  EXPECT_NE(text.find("256MB"), std::string::npos);
  EXPECT_NE(text.find("improvement over 1GigE"), std::string::npos);
  EXPECT_NE(text.find("ShuffleSize,1GigE"), std::string::npos);  // CSV
}

}  // namespace
}  // namespace mrmb
