file(REMOVE_RECURSE
  "CMakeFiles/fig3_yarn_patterns.dir/fig3_yarn_patterns.cc.o"
  "CMakeFiles/fig3_yarn_patterns.dir/fig3_yarn_patterns.cc.o.d"
  "fig3_yarn_patterns"
  "fig3_yarn_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_yarn_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
