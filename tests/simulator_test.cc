#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace mrmb {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), 0);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(30, [&] { order.push_back(3); });
  sim.ScheduleAt(10, [&] { order.push_back(1); });
  sim.ScheduleAt(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(SimulatorTest, TiesFireInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SimulatorTest, AfterIsRelative) {
  Simulator sim;
  SimTime seen = -1;
  sim.ScheduleAt(100, [&] {
    sim.After(50, [&] { seen = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(seen, 150);
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.After(1, recurse);
  };
  sim.After(0, recurse);
  sim.Run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.Now(), 99);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.ScheduleAt(10, [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(SimulatorTest, CancelTwiceIsNoop) {
  Simulator sim;
  const EventId id = sim.ScheduleAt(10, [] {});
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));
}

TEST(SimulatorTest, CancelAfterFireReturnsFalse) {
  Simulator sim;
  const EventId id = sim.ScheduleAt(10, [] {});
  sim.Run();
  EXPECT_FALSE(sim.Cancel(id));
}

TEST(SimulatorTest, CancelFromWithinEvent) {
  Simulator sim;
  bool fired = false;
  const EventId victim = sim.ScheduleAt(20, [&] { fired = true; });
  sim.ScheduleAt(10, [&] { sim.Cancel(victim); });
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, StepRunsOneEvent) {
  Simulator sim;
  int count = 0;
  sim.ScheduleAt(1, [&] { ++count; });
  sim.ScheduleAt(2, [&] { ++count; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<SimTime> fired;
  for (SimTime t : {10, 20, 30, 40}) {
    sim.ScheduleAt(t, [&fired, &sim] { fired.push_back(sim.Now()); });
  }
  sim.RunUntil(25);
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20}));
  EXPECT_EQ(sim.Now(), 25);
  EXPECT_EQ(sim.pending(), 2u);
  sim.Run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(SimulatorTest, RunUntilIncludesDeadlineEvents) {
  Simulator sim;
  bool fired = false;
  sim.ScheduleAt(25, [&] { fired = true; });
  sim.RunUntil(25);
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, RunUntilAdvancesTimeOnEmptyQueue) {
  Simulator sim;
  sim.RunUntil(1000);
  EXPECT_EQ(sim.Now(), 1000);
}

TEST(SimulatorTest, PendingCountsLiveEvents) {
  Simulator sim;
  const EventId a = sim.ScheduleAt(1, [] {});
  sim.ScheduleAt(2, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.Cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
  sim.Run();
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(SimulatorTest, SchedulingIntoThePastDies) {
  Simulator sim;
  sim.ScheduleAt(100, [] {});
  sim.Run();
  EXPECT_DEATH({ sim.ScheduleAt(50, [] {}); }, "past");
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  auto run = [] {
    Simulator sim;
    std::vector<uint64_t> trace;
    for (int i = 0; i < 50; ++i) {
      sim.ScheduleAt(i % 7, [&trace, &sim, i] {
        trace.push_back(static_cast<uint64_t>(sim.Now()) * 1000 +
                        static_cast<uint64_t>(i));
      });
    }
    sim.Run();
    return trace;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace mrmb
