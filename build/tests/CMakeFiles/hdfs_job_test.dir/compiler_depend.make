# Empty compiler generated dependencies file for hdfs_job_test.
# This may be replaced when dependencies are built.
