#include "io/record_gen.h"

#include <gtest/gtest.h>

#include "io/byte_buffer.h"

namespace mrmb {
namespace {

RecordGenerator::Options BytesOptions(size_t key = 64, size_t value = 128,
                                      int unique = 4) {
  RecordGenerator::Options options;
  options.type = DataType::kBytesWritable;
  options.key_size = key;
  options.value_size = value;
  options.num_unique_keys = unique;
  options.seed = 7;
  return options;
}

TEST(RecordGenTest, KeyIdCyclesOverUniqueKeys) {
  RecordGenerator generator(BytesOptions(64, 128, 4));
  EXPECT_EQ(generator.KeyIdFor(0), 0);
  EXPECT_EQ(generator.KeyIdFor(3), 3);
  EXPECT_EQ(generator.KeyIdFor(4), 0);
  EXPECT_EQ(generator.KeyIdFor(11), 3);
}

TEST(RecordGenTest, SerializedSizesMatchOptions) {
  RecordGenerator generator(BytesOptions(64, 128));
  std::string key;
  std::string value;
  generator.SerializedKey(0, &key);
  generator.SerializedValue(0, &value);
  EXPECT_EQ(key.size(), 64u + 4u);  // BytesWritable: 4-byte length prefix
  EXPECT_EQ(value.size(), 128u + 4u);
  EXPECT_EQ(generator.serialized_key_size(), key.size());
  EXPECT_EQ(generator.serialized_value_size(), value.size());
}

TEST(RecordGenTest, SameKeyIdGivesIdenticalBytes) {
  RecordGenerator generator(BytesOptions());
  std::string a;
  std::string b;
  generator.SerializedKey(2, &a);
  generator.SerializedKey(2, &b);
  EXPECT_EQ(a, b);
}

TEST(RecordGenTest, DistinctKeyIdsGiveDistinctBytes) {
  RecordGenerator generator(BytesOptions());
  std::string a;
  std::string b;
  generator.SerializedKey(0, &a);
  generator.SerializedKey(1, &b);
  EXPECT_NE(a, b);
}

TEST(RecordGenTest, ValuesVaryByIndex) {
  RecordGenerator generator(BytesOptions());
  std::string a;
  std::string b;
  generator.SerializedValue(0, &a);
  generator.SerializedValue(1, &b);
  EXPECT_NE(a, b);
  // Same index regenerates identical bytes (determinism).
  std::string a2;
  generator.SerializedValue(0, &a2);
  EXPECT_EQ(a, a2);
}

TEST(RecordGenTest, SeedsChangePayloads) {
  RecordGenerator::Options options = BytesOptions();
  RecordGenerator g1(options);
  options.seed = 8;
  RecordGenerator g2(options);
  std::string a;
  std::string b;
  g1.SerializedValue(5, &a);
  g2.SerializedValue(5, &b);
  EXPECT_NE(a, b);
}

TEST(RecordGenTest, TextPayloadsArePrintable) {
  RecordGenerator::Options options = BytesOptions(32, 64, 3);
  options.type = DataType::kText;
  RecordGenerator generator(options);
  for (int64_t i = 0; i < 3; ++i) {
    std::string key;
    generator.SerializedKey(i, &key);
    BufferReader reader(key);
    Text text;
    ASSERT_TRUE(text.Deserialize(&reader).ok());
    EXPECT_EQ(text.value().size(), 32u);
    for (char c : text.value()) {
      EXPECT_GE(c, 'a');
      EXPECT_LE(c, 'z');
    }
  }
  std::string value;
  generator.SerializedValue(9, &value);
  BufferReader reader(value);
  Text text;
  ASSERT_TRUE(text.Deserialize(&reader).ok());
  for (char c : text.value()) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

TEST(RecordGenTest, TextFramingIsVarint) {
  RecordGenerator::Options options = BytesOptions(64, 128);
  options.type = DataType::kText;
  RecordGenerator generator(options);
  // Text of 64 bytes: 1-byte vint + 64.
  EXPECT_EQ(generator.serialized_key_size(), 65u);
  EXPECT_EQ(generator.serialized_value_size(), 130u);  // 2-byte vint for 128
}

TEST(RecordGenTest, FramedRecordSize) {
  RecordGenerator generator(BytesOptions(64, 128));
  // key 68 + value 132, frame vints: 1 + 2 (132 > 127).
  EXPECT_EQ(generator.framed_record_size(), 68u + 132u + 1u + 2u);
}

TEST(RecordGenTest, RecordsForShuffleBytesRoundsUp) {
  RecordGenerator generator(BytesOptions(64, 128));
  const auto frame = static_cast<int64_t>(generator.framed_record_size());
  EXPECT_EQ(generator.RecordsForShuffleBytes(frame), 1);
  EXPECT_EQ(generator.RecordsForShuffleBytes(frame + 1), 2);
  EXPECT_EQ(generator.RecordsForShuffleBytes(10 * frame), 10);
  EXPECT_EQ(generator.RecordsForShuffleBytes(10 * frame - 1), 10);
}

TEST(RecordGenTest, KeysSortDistinctly) {
  // The big-endian id prefix makes key order match id order.
  RecordGenerator generator(BytesOptions(64, 64, 8));
  std::string prev;
  for (int64_t id = 0; id < 8; ++id) {
    std::string key;
    generator.SerializedKey(id, &key);
    if (id > 0) {
      EXPECT_LT(prev, key);
    }
    prev = key;
  }
}

TEST(RecordGenTest, TinyKeyRejected) {
  RecordGenerator::Options options = BytesOptions(4, 64);
  EXPECT_DEATH({ RecordGenerator generator(options); }, "8-byte key id");
}

TEST(RecordGenTest, UnsupportedTypeRejected) {
  RecordGenerator::Options options = BytesOptions();
  options.type = DataType::kNullWritable;
  EXPECT_DEATH({ RecordGenerator generator(options); }, "supports");
}

TEST(RecordGenTest, LongWritableRecords) {
  RecordGenerator::Options options = BytesOptions();
  options.type = DataType::kLongWritable;
  RecordGenerator generator(options);
  EXPECT_EQ(generator.serialized_key_size(), 8u);
  EXPECT_EQ(generator.serialized_value_size(), 8u);
  // Record frame: two 1-byte vints + 8 + 8.
  EXPECT_EQ(generator.framed_record_size(), 18u);
  std::string key;
  generator.SerializedKey(3, &key);
  BufferReader reader(key);
  LongWritable decoded;
  ASSERT_TRUE(decoded.Deserialize(&reader).ok());
  EXPECT_EQ(decoded.value(), 3);
  std::string value;
  generator.SerializedValue(12345, &value);
  BufferReader value_reader(value);
  ASSERT_TRUE(decoded.Deserialize(&value_reader).ok());
  EXPECT_EQ(decoded.value(), 12345);
}

TEST(RecordGenTest, IntWritableRecords) {
  RecordGenerator::Options options = BytesOptions();
  options.type = DataType::kIntWritable;
  RecordGenerator generator(options);
  EXPECT_EQ(generator.serialized_key_size(), 4u);
  EXPECT_EQ(generator.serialized_value_size(), 4u);
  std::string key_a;
  std::string key_b;
  generator.SerializedKey(1, &key_a);
  generator.SerializedKey(1, &key_b);
  EXPECT_EQ(key_a, key_b);
  generator.SerializedKey(2, &key_b);
  EXPECT_NE(key_a, key_b);
}

}  // namespace
}  // namespace mrmb
