#include "io/checksum.h"

#include <array>

#include "common/logging.h"
#include "common/strings.h"

namespace mrmb {

namespace {

// CRC32C (Castagnoli, reflected polynomial 0x82f63b78) lookup table,
// generated once at first use.
const std::array<uint32_t, 256>& Crc32cTable() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82f63b78u : 0);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32c(uint32_t crc, std::string_view data) {
  const std::array<uint32_t, 256>& table = Crc32cTable();
  crc = ~crc;
  for (const char c : data) {
    crc = table[(crc ^ static_cast<uint8_t>(c)) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

void SealSegment(SpillSegment* segment) {
  MRMB_CHECK(segment != nullptr);
  for (size_t p = 0; p < segment->partitions.size(); ++p) {
    segment->partitions[p].crc =
        Crc32c(segment->PartitionData(static_cast<int>(p)));
  }
  segment->sealed = true;
}

Status VerifySegmentPartition(const SpillSegment& segment, int partition) {
  MRMB_CHECK_GE(partition, 0);
  MRMB_CHECK_LT(static_cast<size_t>(partition), segment.partitions.size());
  if (!segment.sealed) {
    return Status::FailedPrecondition(
        "segment was never sealed; cannot verify partition " +
        std::to_string(partition));
  }
  const SpillSegment::PartitionRange& range =
      segment.partitions[static_cast<size_t>(partition)];
  const uint32_t actual = Crc32c(segment.PartitionData(partition));
  if (actual != range.crc) {
    return Status::DataLoss(StringPrintf(
        "partition %d failed CRC32C verification (stored %08x, computed "
        "%08x over %lld bytes)",
        partition, range.crc, actual, static_cast<long long>(range.length)));
  }
  return Status::OK();
}

Status VerifySegment(const SpillSegment& segment) {
  for (size_t p = 0; p < segment.partitions.size(); ++p) {
    MRMB_RETURN_IF_ERROR(VerifySegmentPartition(segment, static_cast<int>(p)));
  }
  return Status::OK();
}

}  // namespace mrmb
