#include "mapred/job_journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/strings.h"
#include "io/byte_buffer.h"
#include "io/checksum.h"

namespace mrmb {

namespace {

enum RecordType : uint8_t {
  kRunStart = 1,
  kAttemptStart = 2,
  kAttemptFail = 3,
  kMapCommit = 4,
  kReduceCommit = 5,
  kJobCommit = 6,
};

// Upper bound on a single record's payload — anything larger in a length
// prefix is torn-tail garbage, not a record.
constexpr uint32_t kMaxPayloadBytes = 64u << 20;

std::string ErrnoMessage(const char* op, const std::string& path) {
  return StringPrintf("%s %s: %s", op, path.c_str(), std::strerror(errno));
}

Status WriteFully(int fd, const std::string& bytes, const std::string& path) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(ErrnoMessage("write", path));
    }
    if (n == 0) {
      return Status::IOError("journal write made no progress: " + path);
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

std::string FrameRecord(const std::string& payload) {
  std::string framed;
  BufferWriter writer(&framed);
  writer.AppendFixed32(static_cast<uint32_t>(payload.size()));
  writer.AppendFixed32(Crc32c(payload));
  writer.AppendRaw(payload);
  return framed;
}

std::string EncodeRunStart(const JournalRunStart& start) {
  std::string payload;
  BufferWriter writer(&payload);
  writer.AppendByte(kRunStart);
  writer.AppendFixed64(start.digest);
  writer.AppendVarint64(start.num_maps);
  writer.AppendVarint64(start.num_reduces);
  writer.AppendVarint64(start.run);
  return payload;
}

std::string EncodeAttempt(RecordType type, bool is_map, int task,
                          int attempt) {
  std::string payload;
  BufferWriter writer(&payload);
  writer.AppendByte(type);
  writer.AppendByte(is_map ? 1 : 0);
  writer.AppendVarint64(task);
  writer.AppendVarint64(attempt);
  return payload;
}

std::string EncodeMapCommit(const JournalMapCommit& commit) {
  std::string payload;
  BufferWriter writer(&payload);
  writer.AppendByte(kMapCommit);
  writer.AppendVarint64(commit.task);
  writer.AppendVarint64(commit.attempt);
  writer.AppendVarint64(commit.stats.input_records);
  writer.AppendVarint64(commit.stats.output_records);
  writer.AppendVarint64(commit.stats.spill_count);
  writer.AppendVarint64(commit.stats.combine_removed);
  writer.AppendVarint64(commit.stats.output_bytes);
  writer.AppendVarint64(commit.stats.wire_bytes);
  writer.AppendVarint64(commit.stats.spilled_bytes);
  writer.AppendVarint64(commit.stats.spill_extents);
  writer.AppendVarint64(commit.stats.spill_degradations);
  writer.AppendVarint64(commit.stats.combine_spill_input_records);
  writer.AppendVarint64(commit.stats.combine_spill_output_records);
  writer.AppendVarint64(commit.stats.combine_spill_input_bytes);
  writer.AppendVarint64(commit.stats.combine_spill_output_bytes);
  writer.AppendVarint64(commit.stats.combine_merge_input_records);
  writer.AppendVarint64(commit.stats.combine_merge_output_records);
  writer.AppendVarint64(commit.stats.combine_merge_input_bytes);
  writer.AppendVarint64(commit.stats.combine_merge_output_bytes);
  writer.AppendVarint64(commit.stats.combine_micros);
  writer.AppendByte(commit.has_extent ? 1 : 0);
  if (commit.has_extent) {
    writer.AppendVarint64(static_cast<int64_t>(commit.extent.file_name.size()));
    writer.AppendRaw(commit.extent.file_name);
    writer.AppendVarint64(commit.extent.file_bytes);
    writer.AppendVarint64(commit.extent.logical_bytes);
    writer.AppendVarint64(
        static_cast<int64_t>(commit.extent.partitions.size()));
    for (const SpillSegment::PartitionRange& range :
         commit.extent.partitions) {
      writer.AppendVarint64(range.offset);
      writer.AppendVarint64(range.length);
      writer.AppendVarint64(range.records);
      writer.AppendVarint64(range.raw_length);
      writer.AppendFixed32(range.crc);
    }
  }
  return payload;
}

std::string EncodeReduceCommit(const JournalReduceCommit& commit) {
  std::string payload;
  BufferWriter writer(&payload);
  writer.AppendByte(kReduceCommit);
  writer.AppendVarint64(commit.task);
  writer.AppendVarint64(commit.attempt);
  writer.AppendVarint64(commit.groups);
  writer.AppendVarint64(commit.output_records);
  writer.AppendVarint64(commit.output_bytes);
  writer.AppendVarint64(commit.input_records);
  writer.AppendVarint64(commit.input_bytes);
  writer.AppendVarint64(commit.part_bytes);
  writer.AppendFixed32(commit.part_crc);
  return payload;
}

Status ReadVarintInt(BufferReader* reader, int* out) {
  int64_t v = 0;
  MRMB_RETURN_IF_ERROR(reader->ReadVarint64(&v));
  *out = static_cast<int>(v);
  return Status::OK();
}

Status DecodeRecord(std::string_view payload, JournalReplay* replay) {
  BufferReader reader(payload);
  uint8_t type = 0;
  MRMB_RETURN_IF_ERROR(reader.ReadByte(&type));
  switch (type) {
    case kRunStart: {
      uint64_t digest = 0;
      int num_maps = 0, num_reduces = 0, run = 0;
      MRMB_RETURN_IF_ERROR(reader.ReadFixed64(&digest));
      MRMB_RETURN_IF_ERROR(ReadVarintInt(&reader, &num_maps));
      MRMB_RETURN_IF_ERROR(ReadVarintInt(&reader, &num_reduces));
      MRMB_RETURN_IF_ERROR(ReadVarintInt(&reader, &run));
      if (replay->runs > 0 && (digest != replay->digest ||
                               num_maps != replay->num_maps ||
                               num_reduces != replay->num_reduces)) {
        return Status::DataLoss(
            "journal run-start records disagree about the job");
      }
      replay->digest = digest;
      replay->num_maps = num_maps;
      replay->num_reduces = num_reduces;
      ++replay->runs;
      break;
    }
    case kAttemptStart:
    case kAttemptFail: {
      uint8_t is_map = 0;
      int task = 0, attempt = 0;
      MRMB_RETURN_IF_ERROR(reader.ReadByte(&is_map));
      MRMB_RETURN_IF_ERROR(ReadVarintInt(&reader, &task));
      MRMB_RETURN_IF_ERROR(ReadVarintInt(&reader, &attempt));
      if (type == kAttemptStart) {
        std::map<int, int>& attempts =
            is_map ? replay->map_attempts : replay->reduce_attempts;
        int& started = attempts[task];
        started = std::max(started, attempt + 1);
      }
      break;
    }
    case kMapCommit: {
      JournalMapCommit commit;
      MRMB_RETURN_IF_ERROR(ReadVarintInt(&reader, &commit.task));
      MRMB_RETURN_IF_ERROR(ReadVarintInt(&reader, &commit.attempt));
      MRMB_RETURN_IF_ERROR(reader.ReadVarint64(&commit.stats.input_records));
      MRMB_RETURN_IF_ERROR(reader.ReadVarint64(&commit.stats.output_records));
      MRMB_RETURN_IF_ERROR(reader.ReadVarint64(&commit.stats.spill_count));
      MRMB_RETURN_IF_ERROR(reader.ReadVarint64(&commit.stats.combine_removed));
      MRMB_RETURN_IF_ERROR(reader.ReadVarint64(&commit.stats.output_bytes));
      MRMB_RETURN_IF_ERROR(reader.ReadVarint64(&commit.stats.wire_bytes));
      MRMB_RETURN_IF_ERROR(reader.ReadVarint64(&commit.stats.spilled_bytes));
      MRMB_RETURN_IF_ERROR(reader.ReadVarint64(&commit.stats.spill_extents));
      MRMB_RETURN_IF_ERROR(
          reader.ReadVarint64(&commit.stats.spill_degradations));
      MRMB_RETURN_IF_ERROR(
          reader.ReadVarint64(&commit.stats.combine_spill_input_records));
      MRMB_RETURN_IF_ERROR(
          reader.ReadVarint64(&commit.stats.combine_spill_output_records));
      MRMB_RETURN_IF_ERROR(
          reader.ReadVarint64(&commit.stats.combine_spill_input_bytes));
      MRMB_RETURN_IF_ERROR(
          reader.ReadVarint64(&commit.stats.combine_spill_output_bytes));
      MRMB_RETURN_IF_ERROR(
          reader.ReadVarint64(&commit.stats.combine_merge_input_records));
      MRMB_RETURN_IF_ERROR(
          reader.ReadVarint64(&commit.stats.combine_merge_output_records));
      MRMB_RETURN_IF_ERROR(
          reader.ReadVarint64(&commit.stats.combine_merge_input_bytes));
      MRMB_RETURN_IF_ERROR(
          reader.ReadVarint64(&commit.stats.combine_merge_output_bytes));
      MRMB_RETURN_IF_ERROR(
          reader.ReadVarint64(&commit.stats.combine_micros));
      uint8_t has_extent = 0;
      MRMB_RETURN_IF_ERROR(reader.ReadByte(&has_extent));
      commit.has_extent = has_extent != 0;
      if (commit.has_extent) {
        int64_t name_len = 0;
        MRMB_RETURN_IF_ERROR(reader.ReadVarint64(&name_len));
        if (name_len < 0 ||
            static_cast<size_t>(name_len) > reader.remaining()) {
          return Status::DataLoss("map-commit extent name overruns record");
        }
        std::string_view name;
        MRMB_RETURN_IF_ERROR(
            reader.ReadRaw(static_cast<size_t>(name_len), &name));
        commit.extent.file_name.assign(name);
        MRMB_RETURN_IF_ERROR(reader.ReadVarint64(&commit.extent.file_bytes));
        MRMB_RETURN_IF_ERROR(
            reader.ReadVarint64(&commit.extent.logical_bytes));
        int64_t num_partitions = 0;
        MRMB_RETURN_IF_ERROR(reader.ReadVarint64(&num_partitions));
        if (num_partitions < 0 ||
            static_cast<size_t>(num_partitions) > reader.remaining()) {
          return Status::DataLoss("map-commit partition count overruns record");
        }
        commit.extent.partitions.resize(static_cast<size_t>(num_partitions));
        for (SpillSegment::PartitionRange& range : commit.extent.partitions) {
          MRMB_RETURN_IF_ERROR(reader.ReadVarint64(&range.offset));
          MRMB_RETURN_IF_ERROR(reader.ReadVarint64(&range.length));
          MRMB_RETURN_IF_ERROR(reader.ReadVarint64(&range.records));
          MRMB_RETURN_IF_ERROR(reader.ReadVarint64(&range.raw_length));
          MRMB_RETURN_IF_ERROR(reader.ReadFixed32(&range.crc));
        }
      }
      replay->map_commits[commit.task] = std::move(commit);
      break;
    }
    case kReduceCommit: {
      JournalReduceCommit commit;
      MRMB_RETURN_IF_ERROR(ReadVarintInt(&reader, &commit.task));
      MRMB_RETURN_IF_ERROR(ReadVarintInt(&reader, &commit.attempt));
      MRMB_RETURN_IF_ERROR(reader.ReadVarint64(&commit.groups));
      MRMB_RETURN_IF_ERROR(reader.ReadVarint64(&commit.output_records));
      MRMB_RETURN_IF_ERROR(reader.ReadVarint64(&commit.output_bytes));
      MRMB_RETURN_IF_ERROR(reader.ReadVarint64(&commit.input_records));
      MRMB_RETURN_IF_ERROR(reader.ReadVarint64(&commit.input_bytes));
      MRMB_RETURN_IF_ERROR(reader.ReadVarint64(&commit.part_bytes));
      MRMB_RETURN_IF_ERROR(reader.ReadFixed32(&commit.part_crc));
      replay->reduce_commits[commit.task] = commit;
      break;
    }
    case kJobCommit:
      replay->job_committed = true;
      break;
    default:
      return Status::DataLoss(
          StringPrintf("unknown journal record type %d", type));
  }
  return Status::OK();
}

// Walks the journal's frames, decoding each valid record into `replay`.
// Returns the byte offset of the valid prefix; everything past it is torn.
Result<int64_t> ReplayContents(const std::string& contents,
                               JournalReplay* replay) {
  const std::string_view view(contents);
  size_t offset = 0;
  while (offset + 8 <= view.size()) {
    BufferReader header(view.substr(offset, 8));
    uint32_t payload_len = 0;
    uint32_t crc = 0;
    if (!header.ReadFixed32(&payload_len).ok() ||
        !header.ReadFixed32(&crc).ok()) {
      break;
    }
    if (payload_len == 0 || payload_len > kMaxPayloadBytes ||
        offset + 8 + payload_len > view.size()) {
      break;
    }
    const std::string_view payload = view.substr(offset + 8, payload_len);
    if (Crc32c(payload) != crc) break;
    // The frame is intact; a decode failure now means a genuinely corrupt
    // record body, not a torn tail — surface it.
    MRMB_RETURN_IF_ERROR(DecodeRecord(payload, replay));
    ++replay->records_replayed;
    offset += 8 + payload_len;
  }
  replay->truncated_bytes = static_cast<int64_t>(view.size() - offset);
  return static_cast<int64_t>(offset);
}

Result<std::string> ReadWholeFile(int fd, const std::string& path) {
  std::string contents;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(ErrnoMessage("read", path));
    }
    if (n == 0) break;
    contents.append(buf, static_cast<size_t>(n));
  }
  return contents;
}

}  // namespace

JobJournal::JobJournal(std::string path, int fd)
    : path_(std::move(path)), fd_(fd) {}

JobJournal::~JobJournal() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<JobJournal>> JobJournal::Create(
    const std::string& path, const JournalRunStart& start) {
  // Born atomic: the first record goes to a temp file that is fsynced and
  // renamed into place, so no reader ever sees a journal without a valid
  // run-start header.
  const std::string tmp_path = path + ".tmp";
  const int tmp_fd = ::open(tmp_path.c_str(),
                            O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (tmp_fd < 0) {
    return Status::IOError(ErrnoMessage("open", tmp_path));
  }
  const std::string framed = FrameRecord(EncodeRunStart(start));
  Status status = WriteFully(tmp_fd, framed, tmp_path);
  if (status.ok() && ::fsync(tmp_fd) != 0) {
    status = Status::IOError(ErrnoMessage("fsync", tmp_path));
  }
  ::close(tmp_fd);
  if (status.ok() && ::rename(tmp_path.c_str(), path.c_str()) != 0) {
    status = Status::IOError(ErrnoMessage("rename", tmp_path));
  }
  if (!status.ok()) {
    ::unlink(tmp_path.c_str());
    return status;
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError(ErrnoMessage("open", path));
  }
  std::unique_ptr<JobJournal> journal(new JobJournal(path, fd));
  journal->records_appended_ = 1;  // the run-start
  return journal;
}

Result<std::unique_ptr<JobJournal>> JobJournal::OpenForResume(
    const std::string& path, const JournalRunStart& start,
    JournalReplay* replay) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
  if (fd < 0) {
    return Status::NotFound(ErrnoMessage("open", path));
  }
  Result<std::string> contents = ReadWholeFile(fd, path);
  if (!contents.ok()) {
    ::close(fd);
    return contents.status();
  }
  *replay = JournalReplay();
  Result<int64_t> valid_prefix = ReplayContents(*contents, replay);
  if (!valid_prefix.ok()) {
    ::close(fd);
    return valid_prefix.status();
  }
  if (replay->runs == 0) {
    ::close(fd);
    return Status::DataLoss("journal has no intact run-start record: " + path);
  }
  if (replay->digest != start.digest) {
    ::close(fd);
    return Status::InvalidArgument(StringPrintf(
        "journal %s belongs to a different job (digest %016llx, resume "
        "expects %016llx) — the output-shaping configuration must match",
        path.c_str(),
        static_cast<unsigned long long>(replay->digest),
        static_cast<unsigned long long>(start.digest)));
  }
  // Drop the torn tail so this run's appends extend the valid prefix.
  if (replay->truncated_bytes > 0 &&
      ::ftruncate(fd, static_cast<off_t>(*valid_prefix)) != 0) {
    const Status status = Status::IOError(ErrnoMessage("ftruncate", path));
    ::close(fd);
    return status;
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    const Status status = Status::IOError(ErrnoMessage("lseek", path));
    ::close(fd);
    return status;
  }
  std::unique_ptr<JobJournal> journal(new JobJournal(path, fd));
  JournalRunStart this_run = start;
  this_run.run = replay->runs;
  MRMB_RETURN_IF_ERROR(
      journal->AppendRecord(EncodeRunStart(this_run)));
  return journal;
}

Result<JournalReplay> JobJournal::Replay(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::NotFound(ErrnoMessage("open", path));
  }
  Result<std::string> contents = ReadWholeFile(fd, path);
  ::close(fd);
  MRMB_RETURN_IF_ERROR(contents.status());
  JournalReplay replay;
  MRMB_RETURN_IF_ERROR(ReplayContents(*contents, &replay).status());
  return replay;
}

Status JobJournal::AppendRecord(const std::string& payload) {
  const std::string framed = FrameRecord(payload);
  std::lock_guard<std::mutex> lock(mu_);
  MRMB_RETURN_IF_ERROR(WriteFully(fd_, framed, path_));
  // fdatasync, not fsync: the record must be durable before the state
  // transition it describes takes effect, but the inode mtime need not be.
  if (::fdatasync(fd_) != 0) {
    return Status::IOError(ErrnoMessage("fdatasync", path_));
  }
  ++records_appended_;
  return Status::OK();
}

Status JobJournal::AppendAttemptStart(bool is_map, int task, int attempt) {
  return AppendRecord(EncodeAttempt(kAttemptStart, is_map, task, attempt));
}

Status JobJournal::AppendAttemptFail(bool is_map, int task, int attempt) {
  return AppendRecord(EncodeAttempt(kAttemptFail, is_map, task, attempt));
}

Status JobJournal::AppendMapCommit(const JournalMapCommit& commit) {
  return AppendRecord(EncodeMapCommit(commit));
}

Status JobJournal::AppendReduceCommit(const JournalReduceCommit& commit) {
  return AppendRecord(EncodeReduceCommit(commit));
}

Status JobJournal::AppendJobCommit() {
  std::string payload;
  BufferWriter writer(&payload);
  writer.AppendByte(kJobCommit);
  return AppendRecord(payload);
}

int64_t JobJournal::records_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_appended_;
}

}  // namespace mrmb
