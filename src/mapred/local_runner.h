// LocalJobRunner — functional, in-process execution of a MapReduce job,
// hardened as a task-attempt engine with a pipelined shuffle.
//
// Runs every phase for real on real bytes: mappers emit serialized records
// into a bounded KvBuffer (spilling and merging like Hadoop's map side), an
// event-driven shuffle publishes each committed map output to per-reduce
// fetch queues (reducers launch once `reduce_slowstart` of the maps have
// committed and background-merge fetched segments so the final merge sees
// at most `merge_factor` streams — Hadoop's ShuffleScheduler/MergeManager
// shape), and reducers consume a k-way merged, grouped stream. Map and
// reduce tasks run as *attempts* on a bounded worker pool
// (`JobConf::local_threads`):
//
//   - An attempt that fails (injected fault, oversized record, corrupt
//     input) returns a Status instead of aborting the process, and is
//     retried up to `max_task_attempts` times.
//   - A watchdog cancels attempts that outlive `task_timeout_ms`
//     (cooperatively, at record boundaries and injected delays) and
//     reschedules them — Hadoop's task-timeout semantics.
//   - Every map-output partition range is sealed with a CRC32C at
//     spill/merge time and verified at shuffle-read time; a mismatch is
//     DataLoss and re-executes the producing map, never feeds the reducer
//     corrupt bytes (Hadoop's IFile checksum semantics).
//   - `JobConf::local_fault_plan` injects deterministic faults so all three
//     paths are testable end-to-end.
//
// Results are deterministic: attempt behaviour depends only on (task,
// attempt), fault decisions come from per-attempt RNG streams, and all
// aggregation/commit happens in task order — so any `local_threads` value
// and any scheduling produce byte-identical LocalJobResult counters and
// reduce output. For paper-scale performance experiments use SimJobRunner
// (sim_runner.h), which models time instead of burning it.

#ifndef MRMB_MAPRED_LOCAL_RUNNER_H_
#define MRMB_MAPRED_LOCAL_RUNNER_H_

#include <vector>

#include "common/status.h"
#include "mapred/api.h"
#include "mapred/partitioner.h"

namespace mrmb {

// Task-scoped partitioner factory; each map task gets a fresh instance.
using PartitionerFactory =
    std::function<std::unique_ptr<Partitioner>(int task_id)>;

struct LocalJobResult {
  int64_t map_input_records = 0;
  int64_t map_output_records = 0;
  // Records removed by per-spill combining (0 without a combiner).
  int64_t combine_removed_records = 0;

  // ---- Combine pipeline (per-stage input/output accounting; all 0 when
  // the stage did not run) -----------------------------------------------
  // Stage 1 — per-spill combine: every sorted spill of every map attempt,
  // before sealing (Hadoop's classic combiner pass).
  int64_t combine_spill_input_records = 0;
  int64_t combine_spill_output_records = 0;
  int64_t combine_spill_input_bytes = 0;
  int64_t combine_spill_output_bytes = 0;
  // Stage 2 — merge-time combine: re-run over the merged output of map
  // attempts with >= min_spills_for_combine spills, and over every run the
  // reduce-side background merger folds.
  int64_t combine_merge_input_records = 0;
  int64_t combine_merge_output_records = 0;
  int64_t combine_merge_input_bytes = 0;
  int64_t combine_merge_output_bytes = 0;
  int64_t combine_reduce_input_records = 0;
  int64_t combine_reduce_output_records = 0;
  int64_t combine_reduce_input_bytes = 0;
  int64_t combine_reduce_output_bytes = 0;
  // Stage 3 — in-node combine: blocks of node_combine_min_maps co-located
  // map outputs merged + re-combined into one shuffle stream
  // (mapred/node_combiner.h). `node_combines` counts combined segments
  // built, including rebuilds after a member re-executed.
  int64_t combine_node_input_records = 0;
  int64_t combine_node_output_records = 0;
  int64_t combine_node_input_bytes = 0;
  int64_t combine_node_output_bytes = 0;
  int64_t node_combines = 0;
  // Shuffle streams the reduce side actually fetched from (== num_maps
  // without in-node combining; ceil(num_maps / node_combine_min_maps) with
  // it).
  int64_t shuffle_streams = 0;
  // CPU seconds spent inside combiner Reduce() calls, all stages (the
  // calibration source for the simulator's combine_cpu_per_record).
  double combine_seconds = 0;
  // Wire bytes the shuffle serves at the final generations (sum over the
  // served streams of their partition wire lengths). Without in-node
  // combining this equals map_output_wire_bytes — which already reflects
  // per-spill and merge-time combining; with it, the combined segments'
  // (smaller) wire bytes are what reducers fetch.
  int64_t shuffle_serve_bytes = 0;
  // 1 - shuffle_serve_bytes / map_output_wire_bytes: the extra fraction of
  // wire bytes the in-node stage removed on top of the map-side stages
  // (0 when in-node combining is off). Compare shuffle_serve_bytes across
  // combine-off/on runs for the whole pipeline's savings.
  double shuffle_savings_ratio = 0;
  // IFile-framed intermediate bytes before compression (the logical
  // shuffle payload).
  int64_t map_output_bytes = 0;
  // Bytes the simulated wire actually carries: codec frames when
  // map_output_codec is set, identical to map_output_bytes otherwise.
  int64_t map_output_wire_bytes = 0;
  // map_output_wire_bytes / map_output_bytes — the job's *measured*
  // compression ratio (1.0 with no codec; compare against the simulator's
  // MeasureCodecRatio sample estimate).
  double map_output_compression_ratio = 1.0;
  int64_t spill_count = 0;
  // Per-reduce shuffle load.
  std::vector<int64_t> reducer_input_records;
  std::vector<int64_t> reducer_input_bytes;
  int64_t reduce_groups = 0;
  int64_t reduce_input_records = 0;
  // Records/bytes handed to the OutputFormat.
  int64_t output_records = 0;
  int64_t output_bytes = 0;

  // ---- Task-attempt / fault-tolerance counters -------------------------
  // Attempts started (successful + failed + re-executed).
  int64_t map_attempts = 0;
  int64_t reduce_attempts = 0;
  // Additional attempts scheduled after a failure or lost output.
  int64_t map_retries = 0;
  int64_t reduce_retries = 0;
  // Shuffle-read CRC32C mismatches caught (one per corrupt (reduce, map)
  // partition read observed).
  int64_t corruptions_detected = 0;
  // Attempts cancelled by the watchdog deadline.
  int64_t watchdog_timeouts = 0;

  // ---- Shuffle-pipeline counters ---------------------------------------
  // CRC32C partition verifications performed at fetch time. The verify
  // cache makes this (maps x reduces) per committed generation instead of
  // per reduce *attempt*; timing-dependent only when maps re-execute.
  int64_t crc_verifications = 0;
  // Background merge folds run by reduce-side mergers (merge_factor
  // bounding the final fan-in). Deterministic on clean runs: reduces x
  // plan nodes.
  int64_t intermediate_merges = 0;
  // ---- Disk spill engine counters (all 0 when the engine is off) -------
  // True when the run opened a spill store (spill_dir set or
  // spill_budget_bytes >= 0); gates report sections.
  bool spill_engine_enabled = false;
  // Physical extent bytes written by committed map attempts (spills plus
  // final outputs, after block compression and framing).
  int64_t spilled_bytes = 0;
  // Extent files written by committed map attempts.
  int64_t spill_extents = 0;
  // Writes that fell back to RAM residency on ENOSPC/EIO instead of
  // failing the attempt.
  int64_t spill_degradations = 0;
  // ARC block-cache traffic across the whole store. Deterministic at
  // local_threads=1; timing-dependent otherwise (interleaving decides
  // which reader misses).
  int64_t spill_cache_hits = 0;
  int64_t spill_cache_misses = 0;
  int64_t spill_cache_evictions = 0;
  double spill_cache_hit_rate = 0;  // hits / (hits + misses), 0 if idle
  // Scrub/repair taxonomy: single-bit frames healed in place, frames
  // declared unrecoverable (each one triggered a map re-execution or a
  // failed attempt), injected short reads transparently completed, reads
  // that kept failing after retries, and frames visited by scrub passes.
  int64_t spill_blocks_repaired = 0;
  int64_t spill_blocks_lost = 0;
  int64_t spill_short_reads = 0;
  int64_t spill_read_errors = 0;
  int64_t spill_scrubbed_blocks = 0;

  // Fetched segments dropped because the producing map re-executed after
  // the fetch (generation mismatch). Timing-dependent under faults: a
  // reduce that had not fetched the stale generation yet fetches the new
  // one directly and never counts here.
  int64_t stale_fetches_invalidated = 0;

  // ---- Real-socket shuffle transport (all 0 with shuffle_transport =
  // inproc) -------------------------------------------------------------
  // True when the shuffle ran over the loopback TCP data plane; gates the
  // report section.
  bool transport_enabled = false;
  // Fetch request messages the client put on the wire (v1 singles plus
  // batch requests, including retries) and response bytes that crossed
  // the wire (headers + bodies).
  int64_t transport_fetch_rpcs = 0;
  // Partitions fetched (batched protocol entries + single fetches). With
  // protocol v2 many partitions ride one RPC, so this exceeds
  // transport_fetch_rpcs — the ratio is the batching amortization.
  int64_t transport_fetched_partitions = 0;
  // Batch request messages among transport_fetch_rpcs (0 under v1).
  int64_t transport_batches = 0;
  int64_t transport_wire_bytes = 0;
  // Fetches re-issued after a transport-level failure (dropped connection,
  // torn frame, short body).
  int64_t transport_retransmits = 0;
  // Replacement connections dialed after a stream died mid-fetch.
  int64_t transport_reconnects = 0;
  // Server-side refusals: generation mismatch (re-executed map) and
  // not-yet-published map output.
  int64_t transport_stale_refusals = 0;
  // Zero-copy serve taxonomy: writev from the sealed RAM segment vs
  // sendfile straight from a durable extent file.
  int64_t transport_ram_serves = 0;
  int64_t transport_file_serves = 0;
  // Reassembly-buffer pool effectiveness (hits / lookups) and the
  // high-water AIMD in-flight window the batched client reached.
  double transport_pool_hit_rate = 0;
  int64_t transport_window_peak = 0;
  // Client-observed fetch latency (request write to last body byte).
  double transport_fetch_mean_ms = 0;
  double transport_fetch_p99_ms = 0;

  // ---- Crash-safe jobs (journal/resume; zero when the journal is off) --
  // True when the run wrote a write-ahead job journal (job_journal/resume).
  bool journal_enabled = false;
  // True when this run resumed from an existing journal (--resume).
  bool resumed = false;
  // Committed map outputs re-adopted from durable spill extents instead of
  // re-executed, and committed reduce outputs re-used from part files. The
  // attempt counters above count THIS run only, so on a resume
  // (attempts re-run) + (tasks adopted) proves only uncommitted work ran.
  int64_t maps_adopted = 0;
  int64_t reduces_adopted = 0;
  // Stale files garbage-collected on startup: orphan `*.tmp` extents,
  // unreferenced extent files, `_temporary` attempt output, and spill
  // directories left by dead processes.
  int64_t orphans_swept = 0;
  // Journal traffic: records replayed from the valid prefix at resume, and
  // records this run durably appended (including its run-start).
  int64_t journal_records_replayed = 0;
  int64_t journal_records_appended = 0;

  // CRC32C over the committed reduce outputs in task order — a
  // byte-identity probe across runs (a crashed-then-resumed job must
  // reproduce the uninterrupted run's fingerprint exactly). Computed for
  // every job, journal or not.
  uint32_t output_fingerprint = 0;

  // ---- Phase breakdown (host wall time, diagnostic only) ---------------
  // Job start until the last initial map commit.
  double map_phase_seconds = 0;
  // Reduce-side time spent waiting for map outputs to commit.
  double shuffle_wait_seconds = 0;
  // Reduce-side fetch verification + background merge work.
  double shuffle_merge_seconds = 0;
  // Final merge + reduce function execution.
  double reduce_compute_seconds = 0;
  // Fraction of reduce-side busy time (merge + compute) that ran while the
  // map phase was still in progress; 0 when the shuffle never overlaps
  // (reduce_slowstart = 1.0 or local_threads = 1).
  double overlap_efficiency = 0;

  // Real (host) execution time of Run().
  double wall_seconds = 0;
};

class LocalJobRunner {
 public:
  explicit LocalJobRunner(JobConf conf);

  // Executes the job. All pointers must outlive the call. Returns counters
  // or the first validation/configuration error. `partitioner_factory`
  // defaults (when null) to the benchmark partitioner selected by
  // conf.pattern; ordinary jobs (e.g. word count) pass a HashPartitioner
  // factory.
  // `combiner_factory` (optional) installs the combine pipeline: a
  // per-spill pass over every sorted spill before it is sealed (Hadoop's
  // job.setCombinerClass semantics), a merge-time pass over multi-spill map
  // output and reduce-side merge folds when conf.min_spills_for_combine >
  // 0, and the in-node pass across blocks of co-located map outputs when
  // conf.node_combine_min_maps >= 2 (mapred/node_combiner.h). The combiner
  // must be associative and commutative for the merge-time/in-node stages
  // to preserve job output.
  //
  // Threading contract: with conf.local_threads > 1, InputFormat::
  // CreateReader and the mapper/reducer/partitioner/combiner factories are
  // called from concurrent task attempts and must be thread-safe (returning
  // a fresh instance per call, as all the in-tree ones do). OutputFormat is
  // only touched from the coordinating thread: reduce output is staged per
  // attempt and committed in task order after the attempt succeeds, so
  // failed attempts never produce partial output.
  Result<LocalJobResult> Run(InputFormat* input_format,
                             const MapperFactory& mapper_factory,
                             const ReducerFactory& reducer_factory,
                             OutputFormat* output_format,
                             const PartitionerFactory& partitioner_factory =
                                 nullptr,
                             const ReducerFactory& combiner_factory =
                                 nullptr);

  // Convenience: runs the paper's stand-alone micro-benchmark job
  // (NullInputFormat + GeneratingMapper + DiscardingReducer +
  // NullOutputFormat) under `conf`, with the built-in combiner selected by
  // conf.combiner installed.
  static Result<LocalJobResult> RunStandalone(const JobConf& conf);

  const JobConf& conf() const { return conf_; }

 private:
  JobConf conf_;
};

}  // namespace mrmb

#endif  // MRMB_MAPRED_LOCAL_RUNNER_H_
